// int8 symmetric-quantized GEMM with i32 accumulation. Layouts:
//
//   A_q: (m, k) row-major int8, per-row (or per-tensor) scales
//   B_q: (k, n) row-major int8, per-column (or per-tensor) scales
//   C:   (m, n) f32, C = sa ⊙ (A_q · B_q) ⊙ sb + beta·C
//
// The K loop walks *pairs* of k so the panels line up with AVX-512
// VNNI's i16-pair dot product:
//
//   A panel: sign-extended i16 pairs, (p2 * kMR + r) * 2 + t — one
//            4-byte pair per (k-pair, row), broadcast with set1_epi32.
//   B panel: interleaved int8 pairs, (p2 * kNRLp + j) * 2 + t — the 64
//            contiguous bytes for one k-pair widen to two zmm of i16
//            pairs via cvtepi8_epi16.
//
// On VNNI hardware the inner step is one _mm512_dpwssd_epi32 per
// (row, 16-column lane); elsewhere a portable int32 loop computes the
// same sums. Integer accumulation is exact, so both paths — and the
// serial and parallel schedules — produce bitwise-identical output.
//
// K is blocked at kKCInt8 = 8192: |a|,|b| <= 127 bounds one pair step
// at 2*127*127, so a full block stays under 2^31 in i32. Blocks past
// the first dequantize and accumulate into C in f32 (rare: every model
// in this repo has k <= 8192 at the quantized layers).

#include <algorithm>
#include <cstdint>

#include "core/memory.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/device.h"
#include "tensor/gemm.h"

#if defined(__AVX512VNNI__) && defined(__AVX512BW__)
#include <immintrin.h>
#define GEO_GEMM_INT8_VNNI 1
#endif

namespace geotorch::tensor {
namespace {

using namespace gemm_internal;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Packs A(ic:ic+mc, pc:pc+kc) into kMR-row micro-panels of sign-extended
// i16 pairs; rows past mc and the odd-k tail pad with zeros.
void PackAInt8(const int8_t* a, int64_t lda, int64_t ic, int64_t mc,
               int64_t pc, int64_t kc, int16_t* __restrict ap) {
  const int64_t kc2 = CeilDiv(kc, 2);
  for (int64_t pi = 0; pi * kMR < mc; ++pi) {
    int16_t* panel = ap + pi * kc2 * kMR * 2;
    const int64_t rows = std::min(kMR, mc - pi * kMR);
    const int64_t base_i = ic + pi * kMR;
    for (int64_t p2 = 0; p2 < kc2; ++p2) {
      int16_t* dst = panel + p2 * kMR * 2;
      for (int64_t r = 0; r < kMR; ++r) {
        for (int64_t t = 0; t < 2; ++t) {
          const int64_t p = 2 * p2 + t;
          dst[r * 2 + t] = (r < rows && p < kc)
                               ? static_cast<int16_t>(
                                     a[(base_i + r) * lda + pc + p])
                               : int16_t{0};
        }
      }
    }
  }
}

// Packs B(pc:pc+kc, jc:jc+nc) into kNRLp-column micro-panels of
// interleaved int8 pairs.
void PackBInt8(const int8_t* b, int64_t ldb, int64_t pc, int64_t kc,
               int64_t jc, int64_t nc, int8_t* __restrict bp) {
  const int64_t kc2 = CeilDiv(kc, 2);
  for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
    int8_t* panel = bp + pj * kc2 * kNRLp * 2;
    const int64_t cols = std::min(kNRLp, nc - pj * kNRLp);
    const int64_t base_j = jc + pj * kNRLp;
    for (int64_t p2 = 0; p2 < kc2; ++p2) {
      int8_t* dst = panel + p2 * kNRLp * 2;
      for (int64_t t = 0; t < 2; ++t) {
        const int64_t p = 2 * p2 + t;
        if (p < kc) {
          const int8_t* __restrict src = b + (pc + p) * ldb + base_j;
          for (int64_t c = 0; c < cols; ++c) dst[c * 2 + t] = src[c];
          for (int64_t c = cols; c < kNRLp; ++c) dst[c * 2 + t] = 0;
        } else {
          for (int64_t c = 0; c < kNRLp; ++c) dst[c * 2 + t] = 0;
        }
      }
    }
  }
}

// Packs an implicit-im2col B block (already-quantized input image) into
// the same interleaved-pair panel layout as PackBInt8.
void PackBInt8Conv(const ConvImageView<int8_t>& view, int64_t pc, int64_t kc,
                   int64_t jc, int64_t nc, int8_t* __restrict bp) {
  const int64_t kc2 = CeilDiv(kc, 2);
  // Gather each virtual row once at full block width into an L1 stage,
  // then deal it into the pair-interleaved panels.
  alignas(64) int8_t stage[kNC];
  for (int64_t p = 0; p < kc; ++p) {
    view.GatherRow(pc + p, jc, nc, stage);
    const int64_t p2 = p / 2;
    const int64_t t = p % 2;
    for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
      const int64_t cols = std::min(kNRLp, nc - pj * kNRLp);
      int8_t* __restrict dst = bp + (pj * kc2 + p2) * kNRLp * 2;
      const int8_t* __restrict src = stage + pj * kNRLp;
      int64_t c = 0;
      for (; c < cols; ++c) dst[c * 2 + t] = src[c];
      for (; c < kNRLp; ++c) dst[c * 2 + t] = 0;
    }
  }
  if (kc % 2 == 1) {
    // Odd K tail: zero the second slot of the last pair.
    const int64_t p2 = kc / 2;
    for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
      int8_t* __restrict dst = bp + (pj * kc2 + p2) * kNRLp * 2;
      for (int64_t c = 0; c < kNRLp; ++c) dst[c * 2 + 1] = 0;
    }
  }
}

// One kMR x kNRLp register tile: exact i32 sums over the packed pair
// panels, spilled and dequantized into C. `sa` points at the kMR row
// scales for this tile, `sb` at the kNRLp column scales. The epilogue
// (non-null only on the final K block) runs after dequantization as
// separate bias/activation passes over the row segment, matching the
// unfused op order bitwise.
void MicroKernelInt8(int64_t kc2, const int16_t* __restrict ap,
                     const int8_t* __restrict bp, float* __restrict c,
                     int64_t ldc, int64_t rows, int64_t cols, const float* sa,
                     const float* sb, float beta_eff, const GemmEpilogue* ep,
                     int64_t row0, int64_t col0) {
  alignas(64) int32_t spill[kMR * kNRLp];
#if defined(GEO_GEMM_INT8_VNNI)
  __m512i acc[kMR][2];
  for (int64_t r = 0; r < kMR; ++r) {
    acc[r][0] = _mm512_setzero_si512();
    acc[r][1] = _mm512_setzero_si512();
  }
  for (int64_t p2 = 0; p2 < kc2; ++p2) {
    const int8_t* __restrict b_slice = bp + p2 * kNRLp * 2;
    const __m512i b0 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_slice)));
    const __m512i b1 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b_slice + 32)));
    const int16_t* __restrict a_slice = ap + p2 * kMR * 2;
    for (int64_t r = 0; r < kMR; ++r) {
      int32_t pair;
      __builtin_memcpy(&pair, a_slice + r * 2, sizeof(pair));
      const __m512i av = _mm512_set1_epi32(pair);
      acc[r][0] = _mm512_dpwssd_epi32(acc[r][0], av, b0);
      acc[r][1] = _mm512_dpwssd_epi32(acc[r][1], av, b1);
    }
  }
  for (int64_t r = 0; r < kMR; ++r) {
    _mm512_storeu_si512(spill + r * kNRLp, acc[r][0]);
    _mm512_storeu_si512(spill + r * kNRLp + 16, acc[r][1]);
  }
#else
  int32_t acc[kMR][kNRLp] = {};
  for (int64_t p2 = 0; p2 < kc2; ++p2) {
    const int16_t* __restrict a_slice = ap + p2 * kMR * 2;
    const int8_t* __restrict b_slice = bp + p2 * kNRLp * 2;
    for (int64_t r = 0; r < kMR; ++r) {
      const int32_t a0 = a_slice[r * 2];
      const int32_t a1 = a_slice[r * 2 + 1];
      for (int64_t j = 0; j < kNRLp; ++j) {
        acc[r][j] += a0 * b_slice[j * 2] + a1 * b_slice[j * 2 + 1];
      }
    }
  }
  for (int64_t r = 0; r < kMR; ++r)
    for (int64_t j = 0; j < kNRLp; ++j) spill[r * kNRLp + j] = acc[r][j];
#endif
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t* __restrict acc_row = spill + r * kNRLp;
    float* __restrict c_row = c + r * ldc;
    const float sar = sa[r];
    if (beta_eff == 0.0f) {
      for (int64_t j = 0; j < cols; ++j)
        c_row[j] = sar * sb[j] * static_cast<float>(acc_row[j]);
    } else if (beta_eff == 1.0f) {
      for (int64_t j = 0; j < cols; ++j)
        c_row[j] += sar * sb[j] * static_cast<float>(acc_row[j]);
    } else {
      for (int64_t j = 0; j < cols; ++j)
        c_row[j] = beta_eff * c_row[j] +
                   sar * sb[j] * static_cast<float>(acc_row[j]);
    }
  }
  if (ep != nullptr) {
    for (int64_t r = 0; r < rows; ++r)
      ApplyEpilogueRow(c + r * ldc, cols, ep->row_bias, row0 + r,
                       ep->col_bias != nullptr ? ep->col_bias + col0 : nullptr,
                       *ep);
  }
}

struct Int8View {
  const int8_t* a;
  const int8_t* b;         // row-major (k, n); null when packed_b is set
  const int8_t* packed_b;  // pre-packed panels (PackInt8B layout)
  int64_t m, k, n;
  const Int8GemmOptions* opts;
  // Implicit im2col B over a quantized input image.
  const ConvImageView<int8_t>* conv_b = nullptr;
  float ARowScale(int64_t i) const {
    return opts->a_scales[opts->a_scales_len == 1 ? 0 : i];
  }
};

void GemmRegionInt8(const Int8View& v, float* c, float beta, int64_t mb,
                    int64_t me, int64_t nb, int64_t ne) {
  // Per-tile scale slices with pad entries so edge tiles read kMR /
  // kNRLp valid floats (pad lanes multiply zero sums).
  alignas(64) float sa_tile[kMR];
  alignas(64) float sb_tile[kNRLp];
  for (int64_t jc = nb; jc < ne; jc += kNC) {
    const int64_t nc = std::min(kNC, ne - jc);
    for (int64_t pc = 0; pc < v.k; pc += kKCInt8) {
      const int64_t kc = std::min(kKCInt8, v.k - pc);
      const int64_t kc2 = CeilDiv(kc, 2);
      const int8_t* bp;
      if (v.packed_b != nullptr) {
        bp = v.packed_b + LpPackedBOffset(v.k, v.n, jc, pc, kKCInt8);
      } else {
        const int64_t b_bytes = CeilDiv(nc, kNRLp) * kNRLp * kc2 * 2;
        int8_t* wp = reinterpret_cast<int8_t*>(
            ThreadLocalWorkspace(kWorkspaceGemmLpB, CeilDiv(b_bytes, 4)));
        if (v.conv_b != nullptr) {
          PackBInt8Conv(*v.conv_b, pc, kc, jc, nc, wp);
        } else {
          PackBInt8(v.b, v.n, pc, kc, jc, nc, wp);
        }
        bp = wp;
      }
      const float beta_eff = (pc == 0) ? beta : 1.0f;
      const GemmEpilogue* ep = (pc + kc == v.k) ? v.opts->epilogue : nullptr;
      for (int64_t ic = mb; ic < me; ic += kMC) {
        const int64_t mc = std::min(kMC, me - ic);
        const int64_t a_bytes = CeilDiv(mc, kMR) * kMR * kc2 * 2 * 2;
        int16_t* ap = reinterpret_cast<int16_t*>(
            ThreadLocalWorkspace(kWorkspaceGemmLpA, CeilDiv(a_bytes, 4)));
        PackAInt8(v.a, v.k, ic, mc, pc, kc, ap);
        for (int64_t pj = 0; pj * kNRLp < nc; ++pj) {
          const int64_t cols = std::min(kNRLp, nc - pj * kNRLp);
          for (int64_t j = 0; j < kNRLp; ++j) {
            const int64_t col = jc + pj * kNRLp + j;
            sb_tile[j] =
                j < cols
                    ? v.opts->b_scales[v.opts->b_scales_len == 1 ? 0 : col]
                    : 0.0f;
          }
          for (int64_t pi = 0; pi * kMR < mc; ++pi) {
            const int64_t rows = std::min(kMR, mc - pi * kMR);
            for (int64_t r = 0; r < kMR; ++r)
              sa_tile[r] = r < rows ? v.ARowScale(ic + pi * kMR + r) : 0.0f;
            MicroKernelInt8(kc2, ap + pi * kc2 * kMR * 2,
                            bp + pj * kc2 * kNRLp * 2,
                            c + (ic + pi * kMR) * v.n + jc + pj * kNRLp, v.n,
                            rows, cols, sa_tile, sb_tile, beta_eff, ep,
                            ic + pi * kMR, jc + pj * kNRLp);
          }
        }
      }
    }
  }
}

void ScaleCInt8(float* c, int64_t count, float beta) {
  if (beta == 0.0f) {
    std::fill(c, c + count, 0.0f);
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < count; ++i) c[i] *= beta;
  }
}

void GemmInt8Impl(const Int8View& v, float* c, const Int8GemmOptions& opts) {
  if (v.m <= 0 || v.n <= 0) return;
  GEO_OBS_COUNT("gemm.int8_calls", 1);
  if (v.k <= 0) {
    ScaleCInt8(c, v.m * v.n, opts.beta);
    if (opts.epilogue != nullptr) {
      for (int64_t i = 0; i < v.m; ++i)
        ApplyEpilogueRow(c + i * v.n, v.n, opts.epilogue->row_bias, i,
                         opts.epilogue->col_bias, *opts.epilogue);
    }
    return;
  }
  const int64_t work = v.m * v.n * v.k;
  GEO_OBS_COUNT("gemm.flops", 2 * work);
  const int64_t mt = CeilDiv(v.m, kMC);
  const int64_t nt = CeilDiv(v.n, kNC);
  const bool parallel = opts.allow_parallel &&
                        GetDefaultDevice() == Device::kParallel &&
                        work >= kParallelMinWork && mt * nt > 1;
  if (!parallel) {
    GemmRegionInt8(v, c, opts.beta, 0, v.m, 0, v.n);
    return;
  }
  ThreadPool::Global().ParallelFor(mt * nt, [&](int64_t t) {
    const int64_t ti = t / nt;
    const int64_t tj = t % nt;
    GemmRegionInt8(v, c, opts.beta, ti * kMC, std::min(v.m, (ti + 1) * kMC),
                   tj * kNC, std::min(v.n, (tj + 1) * kNC));
  });
}

}  // namespace

void GemmInt8(const int8_t* a, const int8_t* b, float* c, int64_t m, int64_t k,
              int64_t n, const Int8GemmOptions& opts) {
  const Int8View v{a, b, nullptr, m, k, n, &opts};
  GemmInt8Impl(v, c, opts);
}

int64_t Int8PackedBSize(int64_t k, int64_t n) {
  return LpPackedBSize(k, n, kKCInt8);
}

void PackInt8B(const int8_t* b, int64_t k, int64_t n, int8_t* packed) {
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKCInt8) {
      const int64_t kc = std::min(kKCInt8, k - pc);
      PackBInt8(b, n, pc, kc, jc, nc,
                packed + LpPackedBOffset(k, n, jc, pc, kKCInt8));
    }
  }
}

void GemmInt8(const int8_t* a, Int8PackedB b, float* c, int64_t m, int64_t k,
              int64_t n, const Int8GemmOptions& opts) {
  const Int8View v{a, nullptr, b.data, m, k, n, &opts};
  GemmInt8Impl(v, c, opts);
}

void GemmConvInt8(const int8_t* a, const ConvImageView<int8_t>& b, float* c,
                  int64_t m, const Int8GemmOptions& opts) {
  GEO_OBS_COUNT("fusion.conv_implicit", 1);
  const Int8View v{a, nullptr, nullptr, m, b.K(), b.N(), &opts, &b};
  GemmInt8Impl(v, c, opts);
}

}  // namespace geotorch::tensor
