#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <memory>
#include <vector>

namespace geotorch::tensor {
namespace {
constexpr char kMagic[4] = {'G', 'T', 'E', 'N'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveTensor(const std::string& path, const Tensor& t) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    return Status::IoError("write failed: " + path);
  }
  const int32_t rank = t.ndim();
  if (std::fwrite(&rank, sizeof(rank), 1, f.get()) != 1) {
    return Status::IoError("write failed: " + path);
  }
  for (int64_t d : t.shape()) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1) {
      return Status::IoError("write failed: " + path);
    }
  }
  const size_t n = static_cast<size_t>(t.numel());
  if (n > 0 && std::fwrite(t.data(), sizeof(float), n, f.get()) != n) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<Tensor> LoadTensor(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("not a GTEN file: " + path);
  }
  int32_t rank = 0;
  if (std::fread(&rank, sizeof(rank), 1, f.get()) != 1 || rank < 0 ||
      rank > 16) {
    return Status::IoError("corrupt GTEN header: " + path);
  }
  Shape shape(rank);
  for (int32_t i = 0; i < rank; ++i) {
    if (std::fread(&shape[i], sizeof(int64_t), 1, f.get()) != 1 ||
        shape[i] < 0) {
      return Status::IoError("corrupt GTEN dims: " + path);
    }
  }
  const int64_t n = NumElements(shape);
  std::vector<float> values(n);
  if (n > 0 && std::fread(values.data(), sizeof(float),
                          static_cast<size_t>(n),
                          f.get()) != static_cast<size_t>(n)) {
    return Status::IoError("truncated GTEN payload: " + path);
  }
  return Tensor::FromVector(std::move(shape), std::move(values));
}

}  // namespace geotorch::tensor
