#ifndef GEOTORCH_TENSOR_STORAGE_H_
#define GEOTORCH_TENSOR_STORAGE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace geotorch::tensor {

/// The backing buffer of a Tensor: a float array obtained from the
/// process-wide StoragePool (or adopted from a std::vector). Owns the
/// block for its lifetime, returns it to the pool on destruction, and
/// reports its logical size (numel * sizeof(float)) to the global
/// MemoryTracker — so live-bytes accounting reflects tensors that
/// exist, not raw blocks the pool happens to be caching.
class Storage {
 public:
  /// Pool-backed buffer of `numel` floats; zero-filled when `zero`.
  static std::shared_ptr<Storage> New(int64_t numel, bool zero);

  /// Wraps an existing vector without copying (FromVector fast path).
  /// The buffer comes from the vector's allocator, not the pool.
  static std::shared_ptr<Storage> Adopt(std::vector<float> values);

  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t numel() const { return numel_; }

 private:
  Storage() = default;

  float* data_ = nullptr;
  int64_t numel_ = 0;
  /// Size class the block belongs to in the StoragePool; 0 when the
  /// block bypassed the pool or lives in `adopted_`.
  std::size_t class_bytes_ = 0;
  bool pooled_ = false;           ///< data_ came from StoragePool::Allocate
  std::vector<float> adopted_;    ///< owns the buffer in the Adopt case
};

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_STORAGE_H_
