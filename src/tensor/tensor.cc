#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

#include "core/check.h"

namespace geotorch::tensor {

Tensor::Tensor() : Tensor(Shape{0}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(NumElements(shape_)) {
  storage_ = Storage::New(numel_, /*zero=*/true);
}

Tensor Tensor::Zeros(Shape shape) {
  return Tensor(std::move(shape));  // ctor zero-fills
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = NumElements(t.shape_);
  t.storage_ = Storage::New(t.numel_, /*zero=*/false);
  t.offset_ = 0;
  return t;
}

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Uninitialized(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  GEO_CHECK_EQ(NumElements(shape), static_cast<int64_t>(values.size()))
      << "FromVector: shape " << ShapeToString(shape) << " vs "
      << values.size() << " values";
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = static_cast<int64_t>(values.size());
  t.storage_ = Storage::Adopt(std::move(values));
  t.offset_ = 0;
  return t;
}

Tensor Tensor::Scalar(float value) { return Full({1}, value); }

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Uninitialized({n});
  float* d = t.data();
  for (int64_t i = 0; i < n; ++i) d[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t = Uninitialized(std::move(shape));
  float* d = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    d[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Uninitialized(std::move(shape));
  float* d = t.data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    d[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

int64_t Tensor::size(int dim) const {
  if (dim < 0) dim += ndim();
  GEO_CHECK(dim >= 0 && dim < ndim())
      << "size(" << dim << ") on rank-" << ndim() << " tensor";
  return shape_[dim];
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  GEO_CHECK_EQ(static_cast<int>(index.size()), ndim());
  int64_t flat = 0;
  int64_t stride = 1;
  auto it = index.end();
  for (int d = ndim() - 1; d >= 0; --d) {
    --it;
    GEO_CHECK(*it >= 0 && *it < shape_[d])
        << "index " << *it << " out of range for dim " << d << " of "
        << ShapeToString(shape_);
    flat += *it * stride;
    stride *= shape_[d];
  }
  return data()[flat];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return const_cast<Tensor*>(this)->at(index);
}

float& Tensor::flat(int64_t i) {
  GEO_CHECK(i >= 0 && i < numel_) << "flat index " << i << " out of range";
  return data()[i];
}

float Tensor::flat(int64_t i) const {
  return const_cast<Tensor*>(this)->flat(i);
}

Tensor Tensor::Reshape(Shape shape) const {
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      GEO_CHECK_EQ(infer, -1) << "at most one -1 dimension";
      infer = static_cast<int>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    GEO_CHECK(known > 0 && numel_ % known == 0)
        << "cannot infer dimension for reshape of " << ShapeToString(shape_)
        << " to " << ShapeToString(shape);
    shape[infer] = numel_ / known;
  }
  GEO_CHECK_EQ(NumElements(shape), numel_)
      << "reshape " << ShapeToString(shape_) << " -> " << ShapeToString(shape);
  Tensor t = *this;
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t = Uninitialized(shape_);
  std::copy(data(), data() + numel_, t.data());
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data(), data() + numel_, value);
}

void Tensor::AddInPlace(const Tensor& other) {
  GEO_CHECK(SameShape(shape_, other.shape_))
      << "AddInPlace " << ShapeToString(shape_) << " vs "
      << ShapeToString(other.shape_);
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < numel_; ++i) dst[i] += src[i];
}

void Tensor::ScaleInPlace(float s) {
  float* dst = data();
  for (int64_t i = 0; i < numel_; ++i) dst[i] *= s;
}

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + numel_);
}

std::string Tensor::ToString(int64_t max_values) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " [";
  const int64_t n = std::min(numel_, max_values);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << data()[i];
  }
  if (numel_ > n) out << ", ...";
  out << "]";
  return out.str();
}

}  // namespace geotorch::tensor
