#include "tensor/device.h"

#include <atomic>

namespace geotorch::tensor {
namespace {
std::atomic<Device> g_default_device{Device::kParallel};
}  // namespace

Device GetDefaultDevice() {
  return g_default_device.load(std::memory_order_relaxed);
}

void SetDefaultDevice(Device device) {
  g_default_device.store(device, std::memory_order_relaxed);
}

const char* DeviceToString(Device device) {
  switch (device) {
    case Device::kSerial:
      return "serial-cpu";
    case Device::kParallel:
      return "parallel-accel";
  }
  return "unknown";
}

}  // namespace geotorch::tensor
