#ifndef GEOTORCH_TENSOR_SERIALIZE_H_
#define GEOTORCH_TENSOR_SERIALIZE_H_

#include <string>

#include "core/status.h"
#include "tensor/tensor.h"

namespace geotorch::tensor {

/// Writes a tensor to a compact binary file ("GTEN" magic, rank,
/// int64 dims, float32 payload). Used to persist preprocessed
/// spatiotemporal tensors to disk, the final step of the paper's
/// preprocessing pipeline (Section III-B1).
Status SaveTensor(const std::string& path, const Tensor& t);

/// Reads a tensor written by SaveTensor.
Result<Tensor> LoadTensor(const std::string& path);

}  // namespace geotorch::tensor

#endif  // GEOTORCH_TENSOR_SERIALIZE_H_
