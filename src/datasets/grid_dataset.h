#ifndef GEOTORCH_DATASETS_GRID_DATASET_H_
#define GEOTORCH_DATASETS_GRID_DATASET_H_

#include <cstdint>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace geotorch::datasets {

/// A grid-based spatiotemporal dataset over a (T, C, H, W) tensor,
/// with the paper's three sample representations (Section III-A1):
///
///  * basic (Listing 2): x = frame t, y = frame t + lead_time;
///  * sequential (Listing 3): x = frames [t, t+history), y = the next
///    prediction_length frames — the ConvLSTM input;
///  * periodical (Listing 4): x = the closeness stack, extras = the
///    period and trend stacks — the ST-ResNet / DeepSTN+ input.
///
/// Samples come out channel-stacked: basic x is (C, H, W); sequential
/// x is (history, C, H, W) and y is (prediction, C, H, W); periodical
/// x is (len_closeness*C, H, W), extras[0] = (len_period*C, H, W),
/// extras[1] = (len_trend*C, H, W), y = (C, H, W).
class GridDataset : public data::Dataset {
 public:
  enum class Representation { kBasic, kSequential, kPeriodical };

  /// `st_data` is (T, C, H, W); `steps_per_day` fixes the daily period
  /// used by the periodical representation (weekly trend = 7 days).
  GridDataset(tensor::Tensor st_data, int64_t steps_per_day,
              int64_t lead_time = 1);

  /// Switches to the sequential representation.
  void SetSequentialRepresentation(int64_t history_length,
                                   int64_t prediction_length);

  /// Switches to the periodical representation.
  void SetPeriodicalRepresentation(int64_t len_closeness, int64_t len_period,
                                   int64_t len_trend);

  /// Min-max scales the data to [0, 1] in place; returns the (min, max)
  /// used, for de-normalizing predictions.
  std::pair<float, float> MinMaxNormalize();

  Representation representation() const { return representation_; }
  const tensor::Tensor& st_data() const { return data_; }
  int64_t num_timesteps() const { return data_.size(0); }
  int64_t channels() const { return data_.size(1); }
  int64_t height() const { return data_.size(2); }
  int64_t width() const { return data_.size(3); }
  int64_t steps_per_day() const { return steps_per_day_; }

  int64_t Size() const override;
  data::Sample Get(int64_t index) const override;

 private:
  /// Frames [t, t+len) stacked along channels: (len*C, H, W).
  tensor::Tensor FrameStack(int64_t t, int64_t len, int64_t stride) const;
  /// First target timestep usable by the current representation.
  int64_t FirstTarget() const;

  tensor::Tensor data_;  // (T, C, H, W)
  int64_t steps_per_day_;
  Representation representation_ = Representation::kBasic;
  // Basic.
  int64_t lead_time_;
  // Sequential.
  int64_t history_length_ = 0;
  int64_t prediction_length_ = 0;
  // Periodical.
  int64_t len_closeness_ = 0;
  int64_t len_period_ = 0;
  int64_t len_trend_ = 0;
};

}  // namespace geotorch::datasets

#endif  // GEOTORCH_DATASETS_GRID_DATASET_H_
