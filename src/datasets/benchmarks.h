#ifndef GEOTORCH_DATASETS_BENCHMARKS_H_
#define GEOTORCH_DATASETS_BENCHMARKS_H_

#include <cstdint>

#include "datasets/grid_dataset.h"
#include "datasets/raster_dataset.h"

namespace geotorch::datasets {

// Ready-to-use benchmark datasets mirroring the paper's Tables II and
// III. Each is generated synthetically with the statistical structure
// of the original (DESIGN.md §1); shapes match the paper, sample/
// timestep counts default to laptop-scale and are parameterized.

// --- Grid-based spatiotemporal datasets (Table II) -----------------------

/// WeatherBench temperature on a 32 x 64 grid, 1-hour steps.
GridDataset MakeTemperature(int64_t timesteps = 1440, int64_t height = 32,
                            int64_t width = 64, uint64_t seed = 0);
/// WeatherBench total precipitation.
GridDataset MakePrecipitation(int64_t timesteps = 1440, int64_t height = 32,
                              int64_t width = 64, uint64_t seed = 0);
/// WeatherBench total cloud cover.
GridDataset MakeTotalCloudCover(int64_t timesteps = 1440, int64_t height = 32,
                                int64_t width = 64, uint64_t seed = 0);
/// WeatherBench geopotential (500 hPa).
GridDataset MakeGeopotential(int64_t timesteps = 1440, int64_t height = 32,
                             int64_t width = 64, uint64_t seed = 0);
/// WeatherBench total incident solar radiation.
GridDataset MakeSolarRadiation(int64_t timesteps = 1440, int64_t height = 32,
                               int64_t width = 64, uint64_t seed = 0);

/// BikeNYC-DeepSTN: 21 x 12 grid, 1-hour intervals, 2 flow channels.
GridDataset MakeBikeNycDeepStn(int64_t timesteps = 1080, uint64_t seed = 0);

/// TaxiBJ21: 32 x 32 grid, 30-minute intervals, 2 flow channels.
GridDataset MakeTaxiBj21(int64_t timesteps = 1440, uint64_t seed = 0);

/// TaxiNYC-STDN: 10 x 20 grid, 30-minute intervals, 4 channels
/// (in/out flow + in/out volume, per Table II "Flow and Volume").
GridDataset MakeTaxiNycStdn(int64_t timesteps = 1440, uint64_t seed = 0);

/// BikeNYC-STDN: 10 x 20 grid, 30-minute intervals, 4 channels.
GridDataset MakeBikeNycStdn(int64_t timesteps = 1440, uint64_t seed = 0);

/// YellowTrip-NYC, produced end-to-end: synthetic NYC trip records run
/// through the GeoTorchAI preprocessing module (AddSpatialPoints ->
/// GetStGridDataFrame -> GetStGridTensor), exactly the pipeline the
/// paper uses to release this dataset. 12 x 16 grid, 30-minute
/// intervals, channels = (pickups, dropoffs).
struct YellowTripConfig {
  int64_t num_records = 200000;
  int64_t duration_sec = 30LL * 24 * 3600;  // one month
  int partitions_x = 12;
  int partitions_y = 16;
  int64_t step_duration_sec = 1800;
  int num_df_partitions = 4;
  uint64_t seed = 0;
};
GridDataset MakeYellowTripNyc(const YellowTripConfig& config = {});

// --- Raster imagery datasets (Table III) -----------------------------------

/// EuroSAT: 64 x 64, 13 bands, 10 classes.
RasterClassificationDataset MakeEuroSat(int64_t n = 600,
                                        RasterDatasetOptions options = {},
                                        uint64_t seed = 0);
/// SAT-6: 28 x 28, 4 bands, 6 classes.
RasterClassificationDataset MakeSat6(int64_t n = 900,
                                     RasterDatasetOptions options = {},
                                     uint64_t seed = 0);
/// SAT-4: 28 x 28, 4 bands, 4 classes.
RasterClassificationDataset MakeSat4(int64_t n = 900,
                                     RasterDatasetOptions options = {},
                                     uint64_t seed = 0);
/// SlumDetection: 32 x 32, 4 bands, binary.
RasterClassificationDataset MakeSlumDetection(
    int64_t n = 600, RasterDatasetOptions options = {}, uint64_t seed = 0);
/// 38-Cloud: binary cloud segmentation, 4 bands. The paper's tiles are
/// 384 x 384; default 64 here for laptop-scale training (parameterized).
RasterSegmentationDataset MakeCloud38(int64_t n = 120, int64_t size = 64,
                                      RasterDatasetOptions options = {},
                                      uint64_t seed = 0);

}  // namespace geotorch::datasets

#endif  // GEOTORCH_DATASETS_BENCHMARKS_H_
