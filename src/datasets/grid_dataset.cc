#include "datasets/grid_dataset.h"

#include <algorithm>

#include "core/check.h"
#include "tensor/ops.h"

namespace geotorch::datasets {

namespace ts = ::geotorch::tensor;

GridDataset::GridDataset(ts::Tensor st_data, int64_t steps_per_day,
                         int64_t lead_time)
    : data_(std::move(st_data)),
      steps_per_day_(steps_per_day),
      lead_time_(lead_time) {
  GEO_CHECK_EQ(data_.ndim(), 4) << "grid data must be (T, C, H, W)";
  GEO_CHECK_GE(steps_per_day_, 1);
  GEO_CHECK_GE(lead_time_, 1);
}

void GridDataset::SetSequentialRepresentation(int64_t history_length,
                                              int64_t prediction_length) {
  GEO_CHECK(history_length >= 1 && prediction_length >= 1);
  representation_ = Representation::kSequential;
  history_length_ = history_length;
  prediction_length_ = prediction_length;
  GEO_CHECK_GT(Size(), 0) << "dataset too short for this representation";
}

void GridDataset::SetPeriodicalRepresentation(int64_t len_closeness,
                                              int64_t len_period,
                                              int64_t len_trend) {
  GEO_CHECK(len_closeness >= 1 && len_period >= 0 && len_trend >= 0);
  representation_ = Representation::kPeriodical;
  len_closeness_ = len_closeness;
  len_period_ = len_period;
  len_trend_ = len_trend;
  GEO_CHECK_GT(Size(), 0) << "dataset too short for this representation";
}

std::pair<float, float> GridDataset::MinMaxNormalize() {
  const float mn = ts::MinAll(data_);
  const float mx = ts::MaxAll(data_);
  const float range = mx - mn;
  float* d = data_.data();
  if (range > 0.0f) {
    for (int64_t i = 0; i < data_.numel(); ++i) {
      d[i] = (d[i] - mn) / range;
    }
  }
  return {mn, mx};
}

int64_t GridDataset::FirstTarget() const {
  switch (representation_) {
    case Representation::kBasic:
      return lead_time_;
    case Representation::kSequential:
      return history_length_;
    case Representation::kPeriodical: {
      int64_t first = len_closeness_;
      if (len_period_ > 0) {
        first = std::max(first, len_period_ * steps_per_day_);
      }
      if (len_trend_ > 0) {
        first = std::max(first, len_trend_ * 7 * steps_per_day_);
      }
      return first;
    }
  }
  return 0;
}

int64_t GridDataset::Size() const {
  int64_t tail = 0;
  if (representation_ == Representation::kSequential) {
    tail = prediction_length_ - 1;
  }
  const int64_t n = num_timesteps() - FirstTarget() - tail;
  return std::max<int64_t>(0, n);
}

ts::Tensor GridDataset::FrameStack(int64_t t, int64_t len,
                                   int64_t stride) const {
  // Stacks frames t - stride*len, ..., t - stride (oldest first) along
  // the channel axis.
  std::vector<ts::Tensor> frames;
  frames.reserve(len);
  const int64_t c = channels();
  const int64_t h = height();
  const int64_t w = width();
  for (int64_t k = len; k >= 1; --k) {
    const int64_t src = t - k * stride;
    GEO_CHECK_GE(src, 0);
    frames.push_back(
        ts::Slice(data_, 0, src, src + 1).Reshape({c, h, w}));
  }
  return ts::Concat(frames, 0);
}

data::Sample GridDataset::Get(int64_t index) const {
  GEO_CHECK(index >= 0 && index < Size())
      << "index " << index << " out of " << Size();
  const int64_t c = channels();
  const int64_t h = height();
  const int64_t w = width();
  const int64_t target = FirstTarget() + index;
  data::Sample s;
  switch (representation_) {
    case Representation::kBasic: {
      const int64_t src = target - lead_time_;
      s.x = ts::Slice(data_, 0, src, src + 1).Reshape({c, h, w});
      s.y = ts::Slice(data_, 0, target, target + 1).Reshape({c, h, w});
      break;
    }
    case Representation::kSequential: {
      s.x = ts::Slice(data_, 0, target - history_length_, target);
      s.y = ts::Slice(data_, 0, target, target + prediction_length_);
      break;
    }
    case Representation::kPeriodical: {
      s.x = FrameStack(target, len_closeness_, 1);
      if (len_period_ > 0) {
        s.extras.push_back(FrameStack(target, len_period_, steps_per_day_));
      }
      if (len_trend_ > 0) {
        s.extras.push_back(
            FrameStack(target, len_trend_, 7 * steps_per_day_));
      }
      s.y = ts::Slice(data_, 0, target, target + 1).Reshape({c, h, w});
      break;
    }
  }
  return s;
}

}  // namespace geotorch::datasets
