#include "datasets/benchmarks.h"

#include "prep/st_manager.h"
#include "synth/satimage.h"
#include "synth/taxi.h"
#include "synth/weather.h"

namespace geotorch::datasets {

GridDataset MakeTemperature(int64_t timesteps, int64_t height, int64_t width,
                            uint64_t seed) {
  return GridDataset(
      synth::GenerateWeatherField(synth::WeatherKind::kTemperature,
                                  timesteps, height, width, seed),
      /*steps_per_day=*/24);
}

GridDataset MakePrecipitation(int64_t timesteps, int64_t height,
                              int64_t width, uint64_t seed) {
  return GridDataset(
      synth::GenerateWeatherField(synth::WeatherKind::kPrecipitation,
                                  timesteps, height, width, seed),
      /*steps_per_day=*/24);
}

GridDataset MakeTotalCloudCover(int64_t timesteps, int64_t height,
                                int64_t width, uint64_t seed) {
  return GridDataset(
      synth::GenerateWeatherField(synth::WeatherKind::kCloudCover, timesteps,
                                  height, width, seed),
      /*steps_per_day=*/24);
}

GridDataset MakeGeopotential(int64_t timesteps, int64_t height,
                             int64_t width, uint64_t seed) {
  return GridDataset(
      synth::GenerateWeatherField(synth::WeatherKind::kGeopotential,
                                  timesteps, height, width, seed),
      /*steps_per_day=*/24);
}

GridDataset MakeSolarRadiation(int64_t timesteps, int64_t height,
                               int64_t width, uint64_t seed) {
  return GridDataset(
      synth::GenerateWeatherField(synth::WeatherKind::kSolarRadiation,
                                  timesteps, height, width, seed),
      /*steps_per_day=*/24);
}

GridDataset MakeTaxiNycStdn(int64_t timesteps, uint64_t seed) {
  return GridDataset(
      synth::GenerateGridFlow(timesteps, /*c=*/4, /*h=*/10, /*w=*/20,
                              /*steps_per_day=*/48, seed),
      /*steps_per_day=*/48);
}

GridDataset MakeBikeNycStdn(int64_t timesteps, uint64_t seed) {
  return GridDataset(
      synth::GenerateGridFlow(timesteps, /*c=*/4, /*h=*/10, /*w=*/20,
                              /*steps_per_day=*/48, seed + 5),
      /*steps_per_day=*/48);
}

GridDataset MakeBikeNycDeepStn(int64_t timesteps, uint64_t seed) {
  return GridDataset(
      synth::GenerateGridFlow(timesteps, /*c=*/2, /*h=*/21, /*w=*/12,
                              /*steps_per_day=*/24, seed),
      /*steps_per_day=*/24);
}

GridDataset MakeTaxiBj21(int64_t timesteps, uint64_t seed) {
  return GridDataset(
      synth::GenerateGridFlow(timesteps, /*c=*/2, /*h=*/32, /*w=*/32,
                              /*steps_per_day=*/48, seed),
      /*steps_per_day=*/48);
}

GridDataset MakeYellowTripNyc(const YellowTripConfig& config) {
  // The full end-to-end preprocessing pipeline of Section V-B.
  synth::TaxiTripConfig trip_config;
  trip_config.num_records = config.num_records;
  trip_config.duration_sec = config.duration_sec;
  trip_config.seed = config.seed;
  const std::vector<synth::TripRecord> trips =
      synth::GenerateTaxiTrips(trip_config);
  df::DataFrame raw =
      synth::TripsToDataFrame(trips, config.num_df_partitions);

  df::DataFrame spatial =
      prep::STManager::AddSpatialPoints(raw, "lat", "lon", "point");
  // Pickup/dropoff indicator channels aggregated by sum.
  const int pickup_idx = spatial.schema().FieldIndex("is_pickup");
  df::DataFrame with_channels =
      spatial
          .WithColumn("pickup", df::DataType::kDouble,
                      [pickup_idx](const df::RowView& row) -> df::Value {
                        return static_cast<double>(row.GetInt64(pickup_idx));
                      })
          .WithColumn(
              "dropoff", df::DataType::kDouble,
              [pickup_idx](const df::RowView& row) -> df::Value {
                return 1.0 - static_cast<double>(row.GetInt64(pickup_idx));
              });

  prep::StGridSpec spec;
  spec.geometry_column = "point";
  spec.partitions_x = config.partitions_x;
  spec.partitions_y = config.partitions_y;
  spec.time_column = "time";
  spec.step_duration_sec = config.step_duration_sec;
  spec.aggs = {{df::AggKind::kSum, "pickup", "pickups"},
               {df::AggKind::kSum, "dropoff", "dropoffs"}};
  prep::StGridResult result =
      prep::STManager::GetStGridDataFrame(with_channels, spec);
  tensor::Tensor st =
      prep::STManager::GetStGridTensor(result, {"pickups", "dropoffs"});
  const int64_t steps_per_day = 86400 / config.step_duration_sec;
  return GridDataset(std::move(st), steps_per_day);
}

RasterClassificationDataset MakeEuroSat(int64_t n,
                                        RasterDatasetOptions options,
                                        uint64_t seed) {
  synth::SceneConfig config;
  config.size = 64;
  config.bands = 13;
  config.num_classes = 10;
  config.seed = seed;
  auto [images, labels] = synth::GenerateClassificationSet(n, config);
  return RasterClassificationDataset(std::move(images), std::move(labels),
                                     std::move(options));
}

RasterClassificationDataset MakeSat6(int64_t n, RasterDatasetOptions options,
                                     uint64_t seed) {
  synth::SceneConfig config;
  config.size = 28;
  config.bands = 4;
  config.num_classes = 6;
  config.seed = seed + 1;
  auto [images, labels] = synth::GenerateClassificationSet(n, config);
  return RasterClassificationDataset(std::move(images), std::move(labels),
                                     std::move(options));
}

RasterClassificationDataset MakeSat4(int64_t n, RasterDatasetOptions options,
                                     uint64_t seed) {
  synth::SceneConfig config;
  config.size = 28;
  config.bands = 4;
  config.num_classes = 4;
  config.seed = seed + 4;
  auto [images, labels] = synth::GenerateClassificationSet(n, config);
  return RasterClassificationDataset(std::move(images), std::move(labels),
                                     std::move(options));
}

RasterClassificationDataset MakeSlumDetection(int64_t n,
                                              RasterDatasetOptions options,
                                              uint64_t seed) {
  synth::SceneConfig config;
  config.size = 32;
  config.bands = 4;
  config.num_classes = 2;
  config.seed = seed + 2;
  auto [images, labels] = synth::GenerateClassificationSet(n, config);
  return RasterClassificationDataset(std::move(images), std::move(labels),
                                     std::move(options));
}

RasterSegmentationDataset MakeCloud38(int64_t n, int64_t size,
                                      RasterDatasetOptions options,
                                      uint64_t seed) {
  auto [images, masks] =
      synth::GenerateCloudSegmentationSet(n, size, /*bands=*/4, seed + 3);
  return RasterSegmentationDataset(std::move(images), std::move(masks),
                                   std::move(options));
}

}  // namespace geotorch::datasets
