#ifndef GEOTORCH_DATASETS_RASTER_DATASET_H_
#define GEOTORCH_DATASETS_RASTER_DATASET_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace geotorch::datasets {

/// Options shared by the raster datasets, mirroring the flexibility of
/// the Python API (Listing 1): band selection, automatic extraction of
/// additional features, and a per-sample transform.
struct RasterDatasetOptions {
  /// Bands to keep, in order; empty keeps all bands.
  std::vector<int64_t> selected_bands;
  /// When true, a handcrafted feature vector is extracted per image and
  /// returned as extras[0] of every sample — the DeepSAT-V2 input:
  /// min(bands-1, 7) spectral features (normalized difference index of
  /// adjacent band pairs, averaged over the image) plus 6 GLCM texture
  /// features of band 0.
  bool include_additional_features = false;
  /// Optional transform applied to x at Get() time (on the fly, like
  /// passing `transform=` to a GeoTorchAI dataset).
  std::function<tensor::Tensor(const tensor::Tensor&)> transform;
};

/// Classification dataset over multispectral images: x = (C, H, W)
/// image, y = scalar class id, extras[0] = feature vector when
/// include_additional_features is set.
class RasterClassificationDataset : public data::Dataset {
 public:
  /// images: (N, C, H, W); labels: (N).
  RasterClassificationDataset(tensor::Tensor images, tensor::Tensor labels,
                              RasterDatasetOptions options = {});

  int64_t Size() const override { return images_.size(0); }
  data::Sample Get(int64_t index) const override;

  int64_t bands() const { return images_.size(1); }
  /// Length of the handcrafted feature vector (0 when disabled).
  int64_t num_additional_features() const { return num_features_; }

 private:
  tensor::Tensor images_;
  tensor::Tensor labels_;
  tensor::Tensor features_;  // (N, F); empty when disabled
  RasterDatasetOptions options_;
  int64_t num_features_ = 0;
};

/// Segmentation dataset: x = (C, H, W) image, y = (H, W) class mask.
class RasterSegmentationDataset : public data::Dataset {
 public:
  /// images: (N, C, H, W); masks: (N, H, W).
  RasterSegmentationDataset(tensor::Tensor images, tensor::Tensor masks,
                            RasterDatasetOptions options = {});

  int64_t Size() const override { return images_.size(0); }
  data::Sample Get(int64_t index) const override;

 private:
  tensor::Tensor images_;
  tensor::Tensor masks_;
  RasterDatasetOptions options_;
};

/// Computes the handcrafted feature vector of one (C, H, W) image —
/// exposed for tests and for offline (pre-training) extraction with the
/// preprocessing module.
std::vector<float> ExtractImageFeatures(const tensor::Tensor& image);

}  // namespace geotorch::datasets

#endif  // GEOTORCH_DATASETS_RASTER_DATASET_H_
