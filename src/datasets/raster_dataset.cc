#include "datasets/raster_dataset.h"

#include <algorithm>

#include "core/check.h"
#include "core/thread_pool.h"
#include "raster/glcm.h"
#include "raster/ops.h"
#include "raster/raster.h"
#include "tensor/ops.h"

namespace geotorch::datasets {

namespace ts = ::geotorch::tensor;

namespace {

// Keeps only the requested bands of a stacked (N, C, H, W) tensor.
ts::Tensor SelectBands(const ts::Tensor& images,
                       const std::vector<int64_t>& bands) {
  if (bands.empty()) return images;
  std::vector<ts::Tensor> parts;
  parts.reserve(bands.size());
  for (int64_t b : bands) {
    GEO_CHECK(b >= 0 && b < images.size(1)) << "band " << b << " out of range";
    parts.push_back(ts::Slice(images, 1, b, b + 1));
  }
  return ts::Concat(parts, 1);
}

ts::Tensor TakeImage(const ts::Tensor& images, int64_t i) {
  return ts::Slice(images, 0, i, i + 1)
      .Reshape({images.size(1), images.size(2), images.size(3)});
}

}  // namespace

std::vector<float> ExtractImageFeatures(const ts::Tensor& image) {
  GEO_CHECK_EQ(image.ndim(), 3);
  raster::RasterImage img = raster::RasterImage::FromTensor(image);
  std::vector<float> features;
  // Spectral: mean normalized difference index of adjacent band pairs
  // (NDVI/NDWI-style ratios), capped at 7 — matching the paper's 7
  // spectral features for EuroSAT and 3 for the 4-band SAT-6.
  const int64_t num_spectral = std::min<int64_t>(img.bands() - 1, 7);
  for (int64_t b = 0; b < num_spectral; ++b) {
    const std::vector<float> ndi =
        raster::NormalizedDifferenceIndex(img, b, b + 1);
    double mean = 0.0;
    for (float v : ndi) mean += v;
    features.push_back(
        static_cast<float>(mean / static_cast<double>(ndi.size())));
  }
  // Textural: the six GLCM features of band 0 (contrast, dissimilarity,
  // correlation, homogeneity, momentum/ASM, energy).
  const std::vector<float> glcm = raster::GlcmFeatureVector(img, 0);
  features.insert(features.end(), glcm.begin(), glcm.end());
  return features;
}

RasterClassificationDataset::RasterClassificationDataset(
    ts::Tensor images, ts::Tensor labels, RasterDatasetOptions options)
    : labels_(std::move(labels)), options_(std::move(options)) {
  GEO_CHECK_EQ(images.ndim(), 4);
  GEO_CHECK_EQ(labels_.size(0), images.size(0));
  images_ = SelectBands(images, options_.selected_bands);
  if (options_.include_additional_features) {
    const int64_t n = images_.size(0);
    // Probe one image for the feature count, then extract in parallel.
    const std::vector<float> first = ExtractImageFeatures(TakeImage(images_, 0));
    num_features_ = static_cast<int64_t>(first.size());
    features_ = ts::Tensor::Zeros({n, num_features_});
    float* pf = features_.data();
    std::copy(first.begin(), first.end(), pf);
    ThreadPool::Global().ParallelFor(n - 1, [&](int64_t k) {
      const int64_t i = k + 1;
      const std::vector<float> f = ExtractImageFeatures(TakeImage(images_, i));
      std::copy(f.begin(), f.end(), pf + i * num_features_);
    });
  }
}

data::Sample RasterClassificationDataset::Get(int64_t index) const {
  GEO_CHECK(index >= 0 && index < Size());
  data::Sample s;
  s.x = TakeImage(images_, index);
  if (options_.transform) s.x = options_.transform(s.x);
  s.y = ts::Tensor::Scalar(labels_.flat(index));
  if (num_features_ > 0) {
    s.extras.push_back(ts::Slice(features_, 0, index, index + 1)
                           .Reshape({num_features_}));
  }
  return s;
}

RasterSegmentationDataset::RasterSegmentationDataset(
    ts::Tensor images, ts::Tensor masks, RasterDatasetOptions options)
    : masks_(std::move(masks)), options_(std::move(options)) {
  GEO_CHECK_EQ(images.ndim(), 4);
  GEO_CHECK_EQ(masks_.ndim(), 3);
  GEO_CHECK_EQ(masks_.size(0), images.size(0));
  GEO_CHECK_EQ(masks_.size(1), images.size(2));
  GEO_CHECK_EQ(masks_.size(2), images.size(3));
  images_ = SelectBands(images, options_.selected_bands);
}

data::Sample RasterSegmentationDataset::Get(int64_t index) const {
  GEO_CHECK(index >= 0 && index < Size());
  data::Sample s;
  s.x = TakeImage(images_, index);
  if (options_.transform) s.x = options_.transform(s.x);
  s.y = ts::Slice(masks_, 0, index, index + 1)
            .Reshape({masks_.size(1), masks_.size(2)});
  return s;
}

}  // namespace geotorch::datasets
