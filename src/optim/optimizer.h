#ifndef GEOTORCH_OPTIM_OPTIMIZER_H_
#define GEOTORCH_OPTIM_OPTIMIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace geotorch::optim {

/// Base optimizer: owns references to the parameter variables and
/// updates their values in-place from accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradients (parameters without
  /// a gradient are skipped).
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Named optimizer state tensors for checkpointing (DESIGN.md §9).
  /// The returned tensors alias the internal buffers (Tensor copies
  /// share storage), so writing through them restores state in place.
  /// Names are stable per optimizer class ("m.3", "velocity.0", ...).
  virtual std::vector<std::pair<std::string, tensor::Tensor>> StateTensors() {
    return {};
  }
  /// Scalar step clock (Adam's bias-correction counter); 0 when the
  /// optimizer keeps no clock.
  virtual int64_t StepCount() const { return 0; }
  virtual void SetStepCount(int64_t step_count) { (void)step_count; }

 protected:
  std::vector<autograd::Variable> params_;
  float lr_ = 1e-3f;
};

/// Stochastic gradient descent with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr,
      float momentum = 0.0f, float weight_decay = 0.0f);
  void Step() override;
  std::vector<std::pair<std::string, tensor::Tensor>> StateTensors() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba). The optimizer used throughout the paper's
/// evaluation (Section V-C).
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;
  std::vector<std::pair<std::string, tensor::Tensor>> StateTensors() override;
  int64_t StepCount() const override { return t_; }
  void SetStepCount(int64_t step_count) override { t_ = step_count; }

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// RMSprop (Tieleman & Hinton): per-parameter learning rates from an
/// EMA of squared gradients.
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<autograd::Variable> params, float lr,
          float alpha = 0.99f, float eps = 1e-8f);
  void Step() override;
  std::vector<std::pair<std::string, tensor::Tensor>> StateTensors() override;

 private:
  float alpha_;
  float eps_;
  std::vector<tensor::Tensor> sq_avg_;
};

/// Cosine-annealing LR schedule over `total_epochs` epochs from the
/// initial LR down to `min_lr`.
class CosineLrScheduler {
 public:
  CosineLrScheduler(Optimizer* optimizer, int total_epochs,
                    float min_lr = 0.0f);
  /// Call once per epoch.
  void Step();

 private:
  Optimizer* optimizer_;
  int total_epochs_;
  float base_lr_;
  float min_lr_;
  int epoch_ = 0;
};

/// Multiplies the LR by `gamma` every `step_size` epochs.
class StepLrScheduler {
 public:
  StepLrScheduler(Optimizer* optimizer, int step_size, float gamma)
      : optimizer_(optimizer), step_size_(step_size), gamma_(gamma) {}

  /// Call once per epoch.
  void Step();

 private:
  Optimizer* optimizer_;
  int step_size_;
  float gamma_;
  int epoch_ = 0;
};

/// Stops training when the validation metric has not improved for
/// `patience` epochs — the paper's early-stopping criterion.
class EarlyStopping {
 public:
  explicit EarlyStopping(int patience, float min_delta = 0.0f)
      : patience_(patience), min_delta_(min_delta) {}

  /// Reports a new validation loss; returns true when training should
  /// stop.
  bool Update(float val_loss);

  bool should_stop() const { return should_stop_; }
  float best() const { return best_; }
  int bad_epochs() const { return bad_epochs_; }

  /// Restores checkpointed state (models::LoadTrainCheckpoint), so a
  /// resumed run counts patience exactly where the saved run left off.
  void Restore(float best, int bad_epochs) {
    best_ = best;
    bad_epochs_ = bad_epochs;
    should_stop_ = bad_epochs_ >= patience_;
  }

 private:
  int patience_;
  float min_delta_;
  float best_ = 1e30f;
  int bad_epochs_ = 0;
  bool should_stop_ = false;
};

}  // namespace geotorch::optim

#endif  // GEOTORCH_OPTIM_OPTIMIZER_H_
