#include "optim/optimizer.h"

#include <cmath>
#include <string>

#include "core/check.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/device.h"

namespace geotorch::optim {
namespace {

// Minimum parameter count before an update loop bothers with the pool;
// matches the elementwise kernels' threshold order of magnitude.
constexpr int64_t kParallelThreshold = 1 << 14;

// Runs `fn` over [0, n), chunked across the thread pool on the parallel
// device. Every optimizer update below is elementwise (element j depends
// only on index j of the parameter/grad/state buffers), so the split is
// bitwise deterministic regardless of chunking.
template <typename Fn>
void ForRange(int64_t n, Fn&& fn) {
  if (tensor::GetDefaultDevice() == tensor::Device::kParallel &&
      n >= kParallelThreshold) {
    ThreadPool::Global().ParallelForRange(
        n, [&fn](int64_t begin, int64_t end) { fn(begin, end); });
  } else {
    fn(0, n);
  }
}

// Flattens a per-parameter state list into ("<kind>.<i>", tensor)
// pairs for checkpointing; the tensors alias the optimizer's buffers.
void AppendState(
    const char* kind, std::vector<tensor::Tensor>& buffers,
    std::vector<std::pair<std::string, tensor::Tensor>>* out) {
  for (size_t i = 0; i < buffers.size(); ++i) {
    out->emplace_back(std::string(kind) + "." + std::to_string(i),
                      buffers[i]);
  }
}

}  // namespace

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      if (!p.has_grad()) continue;
      p.node()->grad.ScaleInPlace(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) {
      velocity_.push_back(tensor::Tensor::Zeros(p.shape()));
    }
  }
}

void Sgd::Step() {
  GEO_OBS_COUNT("optim.steps", 1);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    const int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      float* v = velocity_[i].data();
      const float momentum = momentum_;
      const float weight_decay = weight_decay_;
      const float lr = lr_;
      ForRange(n, [=](int64_t begin, int64_t end) {
        for (int64_t j = begin; j < end; ++j) {
          const float grad = g[j] + weight_decay * w[j];
          v[j] = momentum * v[j] + grad;
          w[j] -= lr * v[j];
        }
      });
    } else {
      const float weight_decay = weight_decay_;
      const float lr = lr_;
      ForRange(n, [=](int64_t begin, int64_t end) {
        for (int64_t j = begin; j < end; ++j) {
          w[j] -= lr * (g[j] + weight_decay * w[j]);
        }
      });
    }
  }
}

std::vector<std::pair<std::string, tensor::Tensor>> Sgd::StateTensors() {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  AppendState("velocity", velocity_, &out);
  return out;
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(tensor::Tensor::Zeros(p.shape()));
    v_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  GEO_OBS_COUNT("optim.steps", 1);
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    const float beta1 = beta1_;
    const float beta2 = beta2_;
    const float eps = eps_;
    const float weight_decay = weight_decay_;
    const float lr = lr_;
    ForRange(n, [=](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        const float grad = g[j] + weight_decay * w[j];
        m[j] = beta1 * m[j] + (1.0f - beta1) * grad;
        v[j] = beta2 * v[j] + (1.0f - beta2) * grad * grad;
        const float m_hat = m[j] / bc1;
        const float v_hat = v[j] / bc2;
        w[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    });
  }
}

std::vector<std::pair<std::string, tensor::Tensor>> Adam::StateTensors() {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  AppendState("m", m_, &out);
  AppendState("v", v_, &out);
  return out;
}

RmsProp::RmsProp(std::vector<autograd::Variable> params, float lr,
                 float alpha, float eps)
    : Optimizer(std::move(params)), alpha_(alpha), eps_(eps) {
  lr_ = lr;
  sq_avg_.reserve(params_.size());
  for (auto& p : params_) {
    sq_avg_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void RmsProp::Step() {
  GEO_OBS_COUNT("optim.steps", 1);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* s = sq_avg_[i].data();
    const int64_t n = p.numel();
    const float alpha = alpha_;
    const float eps = eps_;
    const float lr = lr_;
    ForRange(n, [=](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        s[j] = alpha * s[j] + (1.0f - alpha) * g[j] * g[j];
        w[j] -= lr * g[j] / (std::sqrt(s[j]) + eps);
      }
    });
  }
}

std::vector<std::pair<std::string, tensor::Tensor>> RmsProp::StateTensors() {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  AppendState("sq_avg", sq_avg_, &out);
  return out;
}

CosineLrScheduler::CosineLrScheduler(Optimizer* optimizer, int total_epochs,
                                     float min_lr)
    : optimizer_(optimizer),
      total_epochs_(total_epochs),
      base_lr_(optimizer->lr()),
      min_lr_(min_lr) {}

void CosineLrScheduler::Step() {
  ++epoch_;
  const float t = std::min(1.0f, static_cast<float>(epoch_) /
                                     static_cast<float>(total_epochs_));
  const float cosine = 0.5f * (1.0f + std::cos(t * static_cast<float>(M_PI)));
  optimizer_->set_lr(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

void StepLrScheduler::Step() {
  ++epoch_;
  if (epoch_ % step_size_ == 0) {
    optimizer_->set_lr(optimizer_->lr() * gamma_);
  }
}

bool EarlyStopping::Update(float val_loss) {
  if (val_loss < best_ - min_delta_) {
    best_ = val_loss;
    bad_epochs_ = 0;
  } else {
    ++bad_epochs_;
    if (bad_epochs_ >= patience_) should_stop_ = true;
  }
  return should_stop_;
}

}  // namespace geotorch::optim
