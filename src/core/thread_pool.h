#ifndef GEOTORCH_CORE_THREAD_POOL_H_
#define GEOTORCH_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace geotorch {

/// A fixed-size worker pool. This is the "cluster" that executes
/// DataFrame partitions and parallel tensor kernels: each worker thread
/// plays the role of a Spark executor in the original system.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit scheduling
  /// overhead. Safe to call with n == 0.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Like ParallelFor but hands each worker a [begin, end) range.
  void ParallelForRange(
      int64_t n, const std::function<void(int64_t, int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide default pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  /// A queued task plus its enqueue timestamp (0 when observability is
  /// off — the latency histogram is skipped for such tasks).
  struct PendingTask {
    std::packaged_task<void()> task;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<PendingTask> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace geotorch

#endif  // GEOTORCH_CORE_THREAD_POOL_H_
