#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "core/check.h"
#include "obs/obs.h"

namespace geotorch {
namespace {
// True on threads owned by a ThreadPool. Nested ParallelFor calls from a
// worker run inline instead of re-submitting: a worker blocking on tasks
// that no free worker can pick up would deadlock the pool.
thread_local bool t_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  GEO_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  GEO_OBS_COUNT("pool.tasks_submitted", 1);
  const int64_t enqueue_ns = GEO_OBS_ON() ? obs::NowNs() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    GEO_CHECK(!shutdown_);
    tasks_.push({std::move(packaged), enqueue_ns});
    GEO_OBS_HIST("pool.queue_depth", static_cast<int64_t>(tasks_.size()));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  for (;;) {
    PendingTask pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      pending = std::move(tasks_.front());
      tasks_.pop();
    }
    const int64_t start_ns = GEO_OBS_ON() ? obs::NowNs() : 0;
    if (pending.enqueue_ns != 0 && start_ns != 0) {
      GEO_OBS_HIST("pool.task_latency_us",
                   (start_ns - pending.enqueue_ns) / 1000);
    }
    pending.task();
    if (start_ns != 0) {
      GEO_OBS_HIST("pool.task_run_us", (obs::NowNs() - start_ns) / 1000);
    }
  }
}

void ThreadPool::ParallelForRange(
    int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (t_inside_pool_worker) {
    GEO_OBS_COUNT("pool.inline_runs", 1);
    fn(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>(n, num_threads());
  if (chunks <= 1) {
    GEO_OBS_COUNT("pool.inline_runs", 1);
    fn(0, n);
    return;
  }
  const int64_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * per;
    const int64_t end = std::min<int64_t>(n, begin + per);
    if (begin >= end) break;
    futs.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  ParallelForRange(n, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace geotorch
