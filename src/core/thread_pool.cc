#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "core/check.h"

namespace geotorch {
namespace {
// True on threads owned by a ThreadPool. Nested ParallelFor calls from a
// worker run inline instead of re-submitting: a worker blocking on tasks
// that no free worker can pick up would deadlock the pool.
thread_local bool t_inside_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  GEO_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    GEO_CHECK(!shutdown_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelForRange(
    int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (t_inside_pool_worker) {
    fn(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>(n, num_threads());
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const int64_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t begin = c * per;
    const int64_t end = std::min<int64_t>(n, begin + per);
    if (begin >= end) break;
    futs.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  ParallelForRange(n, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace geotorch
