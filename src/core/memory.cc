#include "core/memory.h"

#include <unistd.h>

#include <cstdio>

namespace geotorch {

void MemoryTracker::Allocate(int64_t bytes) {
  int64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(int64_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::Reset() {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

int64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  int scanned = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (scanned != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
}

}  // namespace geotorch
