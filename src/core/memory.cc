#include "core/memory.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <vector>

namespace geotorch {

void MemoryTracker::Allocate(int64_t bytes) {
  int64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::Release(int64_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::Reset() {
  current_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

int64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  int scanned = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (scanned != 2) return 0;
  return static_cast<int64_t>(resident) * sysconf(_SC_PAGESIZE);
}

int64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<int64_t>(kb) * 1024;
}

namespace {

// One growable buffer per (thread, slot). Workers in the global pool
// live for the process lifetime, so these are effectively a fixed set of
// arenas; the tracker sees only growth deltas.
struct WorkspaceSet {
  std::vector<float> slots[kWorkspaceSlotCount];
  ~WorkspaceSet() {
    for (auto& s : slots) {
      MemoryTracker::Global().Release(
          static_cast<int64_t>(s.capacity() * sizeof(float)));
    }
  }
};

}  // namespace

float* ThreadLocalWorkspace(WorkspaceSlot slot, int64_t floats) {
  thread_local WorkspaceSet set;
  std::vector<float>& buf = set.slots[slot];
  if (static_cast<int64_t>(buf.size()) < floats) {
    const int64_t old_cap = static_cast<int64_t>(buf.capacity());
    const int64_t grown =
        std::max<int64_t>(floats, static_cast<int64_t>(buf.size()) * 2);
    buf.resize(grown);
    const int64_t new_cap = static_cast<int64_t>(buf.capacity());
    if (new_cap > old_cap) {
      MemoryTracker::Global().Allocate((new_cap - old_cap) *
                                       static_cast<int64_t>(sizeof(float)));
    }
  }
  return buf.data();
}

}  // namespace geotorch
