#ifndef GEOTORCH_CORE_STATUS_H_
#define GEOTORCH_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace geotorch {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB status idiom: public APIs that can fail return a Status
/// (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kOutOfMemory,
  kNotImplemented,
  kInternal,
  /// A caller-scoped quota (e.g. a serving tenant's request budget) is
  /// exhausted. Distinct from kOutOfRange, which the serving layer uses
  /// for queue backpressure: backpressure clears as soon as the queue
  /// drains, a quota clears on its own schedule.
  kResourceExhausted,
  /// A caller-supplied per-request deadline elapsed before the work
  /// finished. Distinct from kOutOfRange backpressure: the request WAS
  /// admitted (and may still complete in the background); only this
  /// caller stopped waiting. The streaming predictor uses it to bound
  /// event-to-prediction staleness.
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result. The value is accessed with ValueOrDie()/operator*
/// after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps
  /// call sites terse:  return 42;  /  return Status::IoError(...);
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status. OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// The contained value. Aborts if this result holds an error.
  const T& ValueOrDie() const&;
  T& ValueOrDie() &;
  /// Moves the contained value out. Aborts if this result holds an error.
  T ValueOrDie() &&;

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::ValueOrDie() const& {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
  return std::get<T>(payload_);
}

template <typename T>
T& Result<T>::ValueOrDie() & {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
  return std::get<T>(payload_);
}

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnBadResult(std::get<Status>(payload_));
  return std::move(std::get<T>(payload_));
}

/// Propagates a non-OK Status out of the current function.
#define GEO_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::geotorch::Status geo_s_ = (expr);        \
    if (!geo_s_.ok()) return geo_s_;           \
  } while (false)

/// Evaluates a Result<T> expression, propagating the error or binding the
/// value:  GEO_ASSIGN_OR_RETURN(auto df, ReadCsv(path));
#define GEO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define GEO_ASSIGN_OR_RETURN_CAT_(a, b) a##b
#define GEO_ASSIGN_OR_RETURN_CAT(a, b) GEO_ASSIGN_OR_RETURN_CAT_(a, b)
#define GEO_ASSIGN_OR_RETURN(lhs, expr)                                       \
  GEO_ASSIGN_OR_RETURN_IMPL(GEO_ASSIGN_OR_RETURN_CAT(geo_res_, __LINE__), lhs, \
                            expr)

}  // namespace geotorch

#endif  // GEOTORCH_CORE_STATUS_H_
