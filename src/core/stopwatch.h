#ifndef GEOTORCH_CORE_STOPWATCH_H_
#define GEOTORCH_CORE_STOPWATCH_H_

#include <chrono>

namespace geotorch {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace geotorch

#endif  // GEOTORCH_CORE_STOPWATCH_H_
