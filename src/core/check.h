#ifndef GEOTORCH_CORE_CHECK_H_
#define GEOTORCH_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace geotorch::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "GEO_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

/// Stream collector so GEO_CHECK(x) << "context" works.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFail(file_, line_, expr_, out_.str()); }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace geotorch::internal

/// Aborts with a message when `cond` is false. For programmer errors
/// (shape mismatches, index bounds) that indicate a bug, not a runtime
/// condition the caller should handle — those use Status instead.
#define GEO_CHECK(cond)                                                 \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::geotorch::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define GEO_CHECK_EQ(a, b) GEO_CHECK((a) == (b)) << " [" << (a) << " vs " << (b) << "] "
#define GEO_CHECK_NE(a, b) GEO_CHECK((a) != (b)) << " [" << (a) << " vs " << (b) << "] "
#define GEO_CHECK_LT(a, b) GEO_CHECK((a) < (b)) << " [" << (a) << " vs " << (b) << "] "
#define GEO_CHECK_LE(a, b) GEO_CHECK((a) <= (b)) << " [" << (a) << " vs " << (b) << "] "
#define GEO_CHECK_GT(a, b) GEO_CHECK((a) > (b)) << " [" << (a) << " vs " << (b) << "] "
#define GEO_CHECK_GE(a, b) GEO_CHECK((a) >= (b)) << " [" << (a) << " vs " << (b) << "] "

#endif  // GEOTORCH_CORE_CHECK_H_
