#ifndef GEOTORCH_CORE_MEMORY_H_
#define GEOTORCH_CORE_MEMORY_H_

#include <atomic>
#include <cstdint>

namespace geotorch {

/// Logical-bytes accounting shared by the DataFrame engine and the
/// GeoPandas-style baseline. Both sides report the same quantity
/// (bytes of live data structures they have materialised), which makes
/// the Fig. 8 memory comparison an in-process, machine-independent
/// measurement.
class MemoryTracker {
 public:
  /// Records an allocation of `bytes` and updates the peak.
  void Allocate(int64_t bytes);
  /// Records a release of `bytes`.
  void Release(int64_t bytes);

  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  void Reset();

  /// Process-wide tracker.
  static MemoryTracker& Global();

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

/// RAII registration of a block of logical memory with a tracker.
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryTracker* tracker, int64_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    tracker_->Allocate(bytes_);
  }
  ~ScopedAllocation() { tracker_->Release(bytes_); }
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

 private:
  MemoryTracker* tracker_;
  int64_t bytes_;
};

/// Resident-set size of this process in bytes (from /proc/self/statm);
/// 0 when unavailable. Used as a cross-check next to logical accounting.
int64_t CurrentRssBytes();

/// Lifetime peak resident-set size in bytes (VmHWM from
/// /proc/self/status); 0 when unavailable. Stamped into bench JSON so
/// results carry the real high-water mark, not just logical accounting.
int64_t PeakRssBytes();

/// Named per-thread scratch slots for kernel workspaces. Each slot is an
/// independent buffer on the calling thread, so a kernel may hold several
/// live workspaces at once (e.g. an im2col buffer while the GEMM packs
/// its panels) as long as they use distinct slots.
enum WorkspaceSlot {
  kWorkspaceGemmPackA = 0,  ///< packed A micro-panels (GEMM)
  kWorkspaceGemmPackB,      ///< packed B micro-panels (GEMM)
  kWorkspaceIm2Col,         ///< im2col patch matrix (conv kernels)
  kWorkspaceConvCols,       ///< second column matrix (conv backward/transpose)
  kWorkspaceGemmLpA,        ///< packed A panels, low-precision GEMMs
  kWorkspaceGemmLpB,        ///< packed B panels, low-precision GEMMs
  kWorkspaceQuant,          ///< quantized activations at layer boundaries
  kWorkspaceSlotCount,
};

/// Returns a float buffer of at least `floats` elements, private to the
/// calling thread and `slot`. The buffer is reused across calls (grown
/// geometrically, never shrunk), so per-sample kernels stop paying an
/// allocation per invocation. Contents are unspecified; the pointer is
/// invalidated by the next call with the same slot on the same thread.
/// Growth is reported to MemoryTracker::Global().
float* ThreadLocalWorkspace(WorkspaceSlot slot, int64_t floats);

}  // namespace geotorch

#endif  // GEOTORCH_CORE_MEMORY_H_
