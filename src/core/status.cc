#include "core/status.h"

#include <cstdio>
#include <cstdlib>

namespace geotorch {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result<T>::ValueOrDie() on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace geotorch
