#ifndef GEOTORCH_CORE_RNG_H_
#define GEOTORCH_CORE_RNG_H_

#include <cstdint>
#include <random>

namespace geotorch {

/// Deterministic random source used by generators, initializers, and
/// data loaders. Every consumer takes an explicit seed so experiments
/// are exactly reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Poisson-distributed count with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Index in [0, weights.size()) drawn proportionally to weights.
  template <typename Container>
  int64_t Categorical(const Container& weights) {
    std::discrete_distribution<int64_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace geotorch

#endif  // GEOTORCH_CORE_RNG_H_
