#ifndef GEOTORCH_PREP_ST_MANAGER_H_
#define GEOTORCH_PREP_ST_MANAGER_H_

#include <optional>
#include <string>
#include <vector>

#include "df/dataframe.h"
#include "spatial/grid.h"
#include "tensor/tensor.h"

namespace geotorch::prep {

/// Mirrors geotorchai.preprocessing.grid.SpacePartition: helpers that
/// derive a grid partitioning of the geographical space covered by a
/// DataFrame.
class SpacePartition {
 public:
  /// Bounding box of a geometry column across all partitions (computed
  /// in parallel).
  static spatial::Envelope ComputeExtent(const df::DataFrame& frame,
                                         const std::string& geometry_column);

  /// Equal-cell grid over an extent (partitions_x columns by
  /// partitions_y rows).
  static spatial::GridPartitioner BuildGrid(const spatial::Envelope& extent,
                                            int partitions_x,
                                            int partitions_y);
};

/// Parameters of spatiotemporal tensor formation, following the
/// paper's Listing 8 (`get_st_grid_dataframe`).
struct StGridSpec {
  std::string geometry_column = "point";
  int partitions_x = 12;
  int partitions_y = 16;
  std::string time_column = "time";
  int64_t step_duration_sec = 1800;
  /// When unset, the extent is computed from the data.
  std::optional<spatial::Envelope> extent;
  /// Aggregations per (cell, timestep); default is a single count
  /// feature.
  std::vector<df::AggSpec> aggs;
};

/// Output of GetStGridDataFrame: the aggregated frame plus the grid and
/// time discretization needed to densify it.
struct StGridResult {
  df::DataFrame frame;  ///< columns: cell_id, time_id, <agg aliases...>
  spatial::Envelope extent;
  int partitions_x = 0;
  int partitions_y = 0;
  int64_t step_duration_sec = 0;
  int64_t num_timesteps = 0;
};

/// Mirrors geotorchai.preprocessing.grid.STManager: converts raw
/// spatiotemporal DataFrames into grid-based spatiotemporal tensors via
/// spatial joins and group-by aggregation, all executed per-partition
/// on the worker pool (no master collect).
class STManager {
 public:
  /// Listing 8 line 3: builds a geometry column from lat/lon columns.
  static df::DataFrame AddSpatialPoints(const df::DataFrame& frame,
                                        const std::string& lat_column,
                                        const std::string& lon_column,
                                        const std::string& new_column_alias);

  /// Bulk point-to-cell scatter: appends `alias` (int64 cell id, -1
  /// outside the extent) computed per partition with the spatial
  /// engine's uniform-grid fast path (spatial::AssignPointsToCells) —
  /// the partition-parallel spatial join under GetStGridDataFrame,
  /// bypassing the per-row closure of WithColumn.
  static df::DataFrame AssignCellColumn(const df::DataFrame& frame,
                                        const spatial::GridPartitioner& grid,
                                        const std::string& geometry_column,
                                        const std::string& alias);

  /// Listing 8 line 6: assigns each row a grid cell (spatial join
  /// against the grid) and a time slot, drops rows outside the extent,
  /// and aggregates features within each (cell, timestep) group.
  static StGridResult GetStGridDataFrame(const df::DataFrame& frame,
                                         const StGridSpec& spec);

  /// Densifies the aggregated frame into a (T, C, H, W) tensor, one
  /// channel per `value_column`. The scatter runs partition-parallel —
  /// this is the DF Formatter half of the DFtoTorch converter.
  static tensor::Tensor GetStGridTensor(
      const StGridResult& result,
      const std::vector<std::string>& value_columns);

  /// Reduces the spatial resolution of a (T, C, H, W) tensor by
  /// sum-pooling `factor` x `factor` cell blocks — the data-volume
  /// reduction / re-partitioning feature referenced in Section III-B1.
  static tensor::Tensor CoarsenGrid(const tensor::Tensor& st_tensor,
                                    int64_t factor);
};

}  // namespace geotorch::prep

#endif  // GEOTORCH_PREP_ST_MANAGER_H_
