#ifndef GEOTORCH_PREP_RASTER_PROCESSING_H_
#define GEOTORCH_PREP_RASTER_PROCESSING_H_

#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "raster/raster.h"

namespace geotorch::prep {

/// Mirrors geotorchai.preprocessing.raster.RasterProcessing: bulk
/// raster transformation executed on the worker pool before model
/// training, instead of on the fly during training (Limitation 4 /
/// Table VIII). In the original system the collection of images lives
/// in a Sedona DataFrame; here it is a vector processed by the same
/// thread-pool "cluster" as the DataFrame engine.
class RasterProcessing {
 public:
  /// Reads every GTIF1 file in `paths`.
  static Result<std::vector<raster::RasterImage>> LoadGeotiffImages(
      const std::vector<std::string>& paths);

  /// Writes images[i] to `<dir>/<prefix><i>.gtif`; returns the paths.
  static Result<std::vector<std::string>> WriteGeotiffImages(
      const std::vector<raster::RasterImage>& images, const std::string& dir,
      const std::string& prefix);

  /// Applies `fn` to every image in parallel.
  static std::vector<raster::RasterImage> TransformParallel(
      const std::vector<raster::RasterImage>& images,
      const std::function<raster::RasterImage(const raster::RasterImage&)>&
          fn);

  /// Convenience: appends the normalized difference index of two bands
  /// to every image (the Listing 9 operation).
  static std::vector<raster::RasterImage> AppendNormalizedDifferenceIndex(
      const std::vector<raster::RasterImage>& images, int64_t band1,
      int64_t band2);
};

}  // namespace geotorch::prep

#endif  // GEOTORCH_PREP_RASTER_PROCESSING_H_
