#include "prep/raster_processing.h"

#include "core/thread_pool.h"
#include "raster/io.h"
#include "raster/ops.h"

namespace geotorch::prep {

Result<std::vector<raster::RasterImage>> RasterProcessing::LoadGeotiffImages(
    const std::vector<std::string>& paths) {
  std::vector<raster::RasterImage> images(paths.size());
  std::vector<Status> statuses(paths.size());
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(paths.size()), [&](int64_t i) {
        auto r = raster::LoadGeotiffImage(paths[i]);
        if (r.ok()) {
          images[i] = std::move(r).ValueOrDie();
        } else {
          statuses[i] = r.status();
        }
      });
  for (const auto& s : statuses) {
    if (!s.ok()) return s;
  }
  return images;
}

Result<std::vector<std::string>> RasterProcessing::WriteGeotiffImages(
    const std::vector<raster::RasterImage>& images, const std::string& dir,
    const std::string& prefix) {
  std::vector<std::string> paths(images.size());
  std::vector<Status> statuses(images.size());
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(images.size()), [&](int64_t i) {
        paths[i] = dir + "/" + prefix + std::to_string(i) + ".gtif";
        statuses[i] = raster::WriteGeotiffImage(images[i], paths[i]);
      });
  for (const auto& s : statuses) {
    if (!s.ok()) return s;
  }
  return paths;
}

std::vector<raster::RasterImage> RasterProcessing::TransformParallel(
    const std::vector<raster::RasterImage>& images,
    const std::function<raster::RasterImage(const raster::RasterImage&)>&
        fn) {
  std::vector<raster::RasterImage> out(images.size());
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(images.size()),
      [&](int64_t i) { out[i] = fn(images[i]); });
  return out;
}

std::vector<raster::RasterImage>
RasterProcessing::AppendNormalizedDifferenceIndex(
    const std::vector<raster::RasterImage>& images, int64_t band1,
    int64_t band2) {
  return TransformParallel(
      images, [band1, band2](const raster::RasterImage& img) {
        return raster::AppendNormalizedDifferenceIndex(img, band1, band2);
      });
}

}  // namespace geotorch::prep
