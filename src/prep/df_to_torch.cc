#include "prep/df_to_torch.h"

#include <algorithm>

#include "core/check.h"
#include "obs/obs.h"

namespace geotorch::prep {
namespace {

float NumericCell(const df::Column& col, int64_t row) {
  if (col.type() == df::DataType::kDouble) {
    return static_cast<float>(col.doubles()[row]);
  }
  GEO_CHECK(col.type() == df::DataType::kInt64)
      << "DFtoTorch columns must be numeric";
  return static_cast<float>(col.int64s()[row]);
}

}  // namespace

DfToTorch::DfToTorch(const df::DataFrame& frame, Options options)
    : options_(std::move(options)) {
  GEO_CHECK(!options_.feature_columns.empty());
  GEO_CHECK_GE(options_.batch_size, 1);
  std::vector<int> feature_idx;
  for (const auto& name : options_.feature_columns) {
    feature_idx.push_back(frame.schema().FieldIndex(name));
  }
  const bool has_label = !options_.label_column.empty();
  const int label_idx =
      has_label ? frame.schema().FieldIndex(options_.label_column) : -1;

  // DF Formatter: per-partition row -> array, in parallel.
  GEO_OBS_SPAN(format_span, "prep.df_to_torch");
  GEO_OBS_COUNT("prep.rows_formatted", frame.NumRows());
  features_.resize(frame.num_partitions());
  labels_.resize(frame.num_partitions());
  frame.ForEachPartition([&](const df::Partition& part, int pi) {
    const int64_t rows = part.num_rows();
    std::vector<float>& fx = features_[pi];
    fx.resize(rows * feature_idx.size());
    for (int64_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < feature_idx.size(); ++c) {
        fx[r * feature_idx.size() + c] =
            NumericCell(part.column(feature_idx[c]), r);
      }
    }
    std::vector<float>& fy = labels_[pi];
    fy.resize(rows, 0.0f);
    if (has_label) {
      for (int64_t r = 0; r < rows; ++r) {
        fy[r] = NumericCell(part.column(label_idx), r);
      }
    }
  });
  for (const auto& fy : labels_) {
    num_rows_ += static_cast<int64_t>(fy.size());
  }
}

void DfToTorch::Reset() {
  part_ = 0;
  row_in_part_ = 0;
}

bool DfToTorch::NextBatch(tensor::Tensor* x, tensor::Tensor* y) {
  const int64_t nf = num_features();
  std::vector<float> bx;
  std::vector<float> by;
  while (static_cast<int64_t>(by.size()) < options_.batch_size &&
         part_ < features_.size()) {
    const int64_t rows_here =
        static_cast<int64_t>(labels_[part_].size());
    if (row_in_part_ >= rows_here) {
      ++part_;
      row_in_part_ = 0;
      continue;
    }
    const int64_t take = std::min(
        options_.batch_size - static_cast<int64_t>(by.size()),
        rows_here - row_in_part_);
    const float* fx = features_[part_].data() + row_in_part_ * nf;
    bx.insert(bx.end(), fx, fx + take * nf);
    const float* fy = labels_[part_].data() + row_in_part_;
    by.insert(by.end(), fy, fy + take);
    row_in_part_ += take;
  }
  if (by.empty()) return false;
  const int64_t b = static_cast<int64_t>(by.size());
  tensor::Tensor batch_x = tensor::Tensor::FromVector({b, nf}, std::move(bx));
  if (options_.transform) batch_x = options_.transform(batch_x);
  *x = std::move(batch_x);
  *y = tensor::Tensor::FromVector({b}, std::move(by));
  return true;
}

std::unique_ptr<data::Dataset> DfToTorch::ToDataset() const {
  const int64_t nf = num_features();
  std::vector<float> all_x;
  std::vector<float> all_y;
  all_x.reserve(num_rows_ * nf);
  all_y.reserve(num_rows_);
  for (size_t p = 0; p < features_.size(); ++p) {
    all_x.insert(all_x.end(), features_[p].begin(), features_[p].end());
    all_y.insert(all_y.end(), labels_[p].begin(), labels_[p].end());
  }
  return std::make_unique<data::TensorDataset>(
      tensor::Tensor::FromVector({num_rows_, nf}, std::move(all_x)),
      tensor::Tensor::FromVector({num_rows_}, std::move(all_y)));
}

}  // namespace geotorch::prep
