#include "prep/st_manager.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "core/check.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "spatial/join.h"

namespace geotorch::prep {

spatial::Envelope SpacePartition::ComputeExtent(
    const df::DataFrame& frame, const std::string& geometry_column) {
  const int col = frame.schema().FieldIndex(geometry_column);
  GEO_CHECK(frame.schema().type(col) == df::DataType::kGeometry);
  std::mutex mu;
  spatial::Envelope extent = spatial::Envelope::Empty();
  frame.ForEachPartition([&](const df::Partition& part, int) {
    spatial::Envelope local = spatial::Envelope::Empty();
    for (const auto& p : part.column(col).points()) {
      local.ExpandToInclude(p);
    }
    std::lock_guard<std::mutex> lock(mu);
    extent.ExpandToInclude(local);
  });
  GEO_CHECK(!extent.IsEmpty()) << "no points in column " << geometry_column;
  return extent;
}

spatial::GridPartitioner SpacePartition::BuildGrid(
    const spatial::Envelope& extent, int partitions_x, int partitions_y) {
  return spatial::GridPartitioner(extent, partitions_x, partitions_y);
}

df::DataFrame STManager::AddSpatialPoints(
    const df::DataFrame& frame, const std::string& lat_column,
    const std::string& lon_column, const std::string& new_column_alias) {
  const int lat = frame.schema().FieldIndex(lat_column);
  const int lon = frame.schema().FieldIndex(lon_column);
  return frame.WithColumn(
      new_column_alias, df::DataType::kGeometry,
      [lat, lon](const df::RowView& row) -> df::Value {
        return spatial::Point{row.GetDouble(lon), row.GetDouble(lat)};
      });
}

df::DataFrame STManager::AssignCellColumn(const df::DataFrame& frame,
                                          const spatial::GridPartitioner& grid,
                                          const std::string& geometry_column,
                                          const std::string& alias) {
  GEO_OBS_SPAN(scatter_span, "prep.cell_scatter");
  const int geom_col = frame.schema().FieldIndex(geometry_column);
  GEO_CHECK(frame.schema().type(geom_col) == df::DataType::kGeometry);
  auto fields = frame.schema().fields();
  fields.emplace_back(alias, df::DataType::kInt64);
  auto schema = std::make_shared<const df::Schema>(std::move(fields));

  std::vector<std::shared_ptr<const df::Partition>> parts(
      frame.num_partitions());
  frame.ForEachPartition([&](const df::Partition& part, int pi) {
    // The outer loop already fans partitions across the pool, so the
    // per-partition assign runs inline on this worker.
    std::vector<int64_t> cells =
        spatial::AssignPointsToCells(part.column(geom_col).points(), grid);
    std::vector<df::SharedColumn> cols;
    cols.reserve(part.num_columns() + 1);
    for (int c = 0; c < part.num_columns(); ++c) {
      cols.push_back(part.column_ptr(c));
    }
    cols.push_back(df::TrackColumn(df::Column::FromInt64s(std::move(cells))));
    parts[pi] = std::make_shared<df::Partition>(std::move(cols));
  });
  return df::DataFrame::FromPartitions(std::move(schema), std::move(parts));
}

StGridResult STManager::GetStGridDataFrame(const df::DataFrame& frame,
                                           const StGridSpec& spec) {
  GEO_OBS_SPAN(grid_span, "prep.st_grid");
  GEO_CHECK(spec.partitions_x >= 1 && spec.partitions_y >= 1);
  GEO_CHECK_GT(spec.step_duration_sec, 0);

  const spatial::Envelope extent =
      spec.extent.has_value()
          ? *spec.extent
          : SpacePartition::ComputeExtent(frame, spec.geometry_column);
  const spatial::GridPartitioner grid =
      SpacePartition::BuildGrid(extent, spec.partitions_x, spec.partitions_y);

  const int time_col = frame.schema().FieldIndex(spec.time_column);
  GEO_CHECK(frame.schema().type(time_col) == df::DataType::kInt64)
      << "time column must be int64 seconds";

  // Spatial join via the grid fast path (bulk, partition-parallel) +
  // temporal slicing as a computed column.
  df::DataFrame with_cell =
      AssignCellColumn(frame, grid, spec.geometry_column, "cell_id");
  df::DataFrame with_time = with_cell.WithColumn(
      "time_id", df::DataType::kInt64,
      [time_col, &spec](const df::RowView& row) -> df::Value {
        return row.GetInt64(time_col) / spec.step_duration_sec;
      });
  std::vector<df::AggSpec> aggs = spec.aggs;
  if (aggs.empty()) {
    aggs.push_back({df::AggKind::kCount, "", "count"});
  }
  // Project to the columns the aggregation needs before filtering, so
  // the filter does not materialize the wide input again.
  std::vector<std::string> needed = {"cell_id", "time_id"};
  for (const auto& a : aggs) {
    if (a.kind == df::AggKind::kCount) continue;
    if (std::find(needed.begin(), needed.end(), a.column) == needed.end()) {
      needed.push_back(a.column);
    }
  }
  df::DataFrame narrow = with_time.Select(needed);
  const int cell_idx = narrow.schema().FieldIndex("cell_id");
  df::DataFrame inside = narrow.Filter(
      [cell_idx](const df::RowView& row) {
        return row.GetInt64(cell_idx) >= 0;
      });
  // Shard the aggregation at least as fine as the input partitioning:
  // with near-unique (cell, time) keys the output is data-sized, and a
  // single merge shard (the default on a small pool) would produce one
  // dataset-scale partition — the exact granularity the out-of-core
  // store cannot usefully evict (DESIGN.md §12).
  const int agg_shards =
      std::max(inside.num_partitions(),
               std::max(1, ThreadPool::Global().num_threads()));
  df::DataFrame aggregated =
      inside.GroupByAgg({"cell_id", "time_id"}, aggs, agg_shards);

  // Number of timesteps: max time_id + 1 over the aggregated frame.
  int64_t max_time = -1;
  for (int64_t t : aggregated.CollectInt64("time_id")) {
    max_time = std::max(max_time, t);
  }

  StGridResult result;
  result.frame = std::move(aggregated);
  result.extent = extent;
  result.partitions_x = spec.partitions_x;
  result.partitions_y = spec.partitions_y;
  result.step_duration_sec = spec.step_duration_sec;
  result.num_timesteps = max_time + 1;
  return result;
}

tensor::Tensor STManager::GetStGridTensor(
    const StGridResult& result,
    const std::vector<std::string>& value_columns) {
  GEO_OBS_SPAN(scatter_span, "prep.tensor_scatter");
  GEO_CHECK(!value_columns.empty());
  const int64_t t = result.num_timesteps;
  const int64_t c = static_cast<int64_t>(value_columns.size());
  const int64_t h = result.partitions_y;
  const int64_t w = result.partitions_x;
  GEO_CHECK_GT(t, 0) << "empty spatiotemporal frame";
  tensor::Tensor out = tensor::Tensor::Zeros({t, c, h, w});
  float* po = out.data();

  const df::DataFrame& frame = result.frame;
  const int cell_col = frame.schema().FieldIndex("cell_id");
  const int time_col = frame.schema().FieldIndex("time_id");
  std::vector<int> value_idx;
  std::vector<bool> value_is_int;
  for (const auto& name : value_columns) {
    const int i = frame.schema().FieldIndex(name);
    value_idx.push_back(i);
    value_is_int.push_back(frame.schema().type(i) == df::DataType::kInt64);
  }

  // Post-group-by, every (cell, time) key lives in exactly one
  // partition, so the parallel scatter below writes disjoint offsets.
  frame.ForEachPartition([&](const df::Partition& part, int) {
    const auto& cells = part.column(cell_col).int64s();
    const auto& times = part.column(time_col).int64s();
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      const int64_t cell = cells[r];
      const int64_t time = times[r];
      GEO_CHECK(cell >= 0 && cell < h * w && time >= 0 && time < t);
      const int64_t iy = cell / w;
      const int64_t ix = cell % w;
      for (int64_t ci = 0; ci < c; ++ci) {
        const df::Column& col = part.column(value_idx[ci]);
        const double v = value_is_int[ci]
                             ? static_cast<double>(col.int64s()[r])
                             : col.doubles()[r];
        po[((time * c + ci) * h + iy) * w + ix] = static_cast<float>(v);
      }
    }
  });
  return out;
}

tensor::Tensor STManager::CoarsenGrid(const tensor::Tensor& st_tensor,
                                      int64_t factor) {
  GEO_CHECK_EQ(st_tensor.ndim(), 4);
  GEO_CHECK_GE(factor, 1);
  const int64_t t = st_tensor.size(0);
  const int64_t c = st_tensor.size(1);
  const int64_t h = st_tensor.size(2);
  const int64_t w = st_tensor.size(3);
  GEO_CHECK(h % factor == 0 && w % factor == 0)
      << "grid " << h << "x" << w << " not divisible by " << factor;
  const int64_t oh = h / factor;
  const int64_t ow = w / factor;
  tensor::Tensor out = tensor::Tensor::Zeros({t, c, oh, ow});
  const float* pi = st_tensor.data();
  float* po = out.data();
  for (int64_t tc = 0; tc < t * c; ++tc) {
    const float* in_plane = pi + tc * h * w;
    float* out_plane = po + tc * oh * ow;
    for (int64_t i = 0; i < h; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        out_plane[(i / factor) * ow + (j / factor)] += in_plane[i * w + j];
      }
    }
  }
  return out;
}

}  // namespace geotorch::prep
