#ifndef GEOTORCH_PREP_DF_TO_TORCH_H_
#define GEOTORCH_PREP_DF_TO_TORCH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "df/dataframe.h"
#include "tensor/tensor.h"

namespace geotorch::prep {

/// The DFtoTorch Converter (Section III-C, Fig. 7): maps a preprocessed
/// DataFrame into batches of tensors without collecting the frame onto
/// a "master".
///
/// Stage 1, the DF Formatter, runs at construction: each partition maps
/// its rows into a contiguous float array in parallel (one array per
/// partition — no cross-partition materialization).
/// Stage 2, the Row Transformer, is the batch iterator: NextBatch()
/// walks the per-partition arrays, emits (B, num_features) inputs plus
/// labels, and applies the user transform — the Petastorm role.
class DfToTorch {
 public:
  struct Options {
    /// Numeric (double or int64) columns that become the feature vector.
    std::vector<std::string> feature_columns;
    /// Optional numeric label column ("" = no labels; NextBatch's y is
    /// then a (B) tensor of zeros).
    std::string label_column;
    int64_t batch_size = 32;
    /// Optional per-batch transform applied to x before it is returned.
    std::function<tensor::Tensor(const tensor::Tensor&)> transform;
  };

  DfToTorch(const df::DataFrame& frame, Options options);

  /// Starts a new pass over the rows.
  void Reset();

  /// Emits the next batch: x is (B, num_features), y is (B). Returns
  /// false at the end of the data.
  bool NextBatch(tensor::Tensor* x, tensor::Tensor* y);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_features() const {
    return static_cast<int64_t>(options_.feature_columns.size());
  }

  /// Materializes everything into an in-memory Dataset (convenient for
  /// the training loops in this repo's examples).
  std::unique_ptr<data::Dataset> ToDataset() const;

 private:
  Options options_;
  // Per-partition formatted arrays (row-major, num_features wide).
  std::vector<std::vector<float>> features_;
  std::vector<std::vector<float>> labels_;
  int64_t num_rows_ = 0;
  // Iterator state.
  size_t part_ = 0;
  int64_t row_in_part_ = 0;
};

}  // namespace geotorch::prep

#endif  // GEOTORCH_PREP_DF_TO_TORCH_H_
