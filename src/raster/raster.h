#ifndef GEOTORCH_RASTER_RASTER_H_
#define GEOTORCH_RASTER_RASTER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace geotorch::raster {

/// A multispectral raster image: `bands` planes of height x width
/// float32 samples plus georeferencing metadata (CRS EPSG code and an
/// affine geotransform, as in GeoTIFF). Plane-major layout:
/// data[(b*H + i)*W + j].
class RasterImage {
 public:
  RasterImage() = default;
  RasterImage(int64_t height, int64_t width, int64_t bands);

  int64_t height() const { return height_; }
  int64_t width() const { return width_; }
  int64_t bands() const { return bands_; }
  int64_t PixelsPerBand() const { return height_ * width_; }

  float at(int64_t band, int64_t i, int64_t j) const;
  float& at(int64_t band, int64_t i, int64_t j);
  const float* band_data(int64_t band) const;
  float* band_data(int64_t band);
  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  /// EPSG code of the coordinate reference system (default 4326).
  int32_t crs_epsg() const { return crs_epsg_; }
  void set_crs_epsg(int32_t epsg) { crs_epsg_ = epsg; }

  /// GDAL-style affine transform: {origin_x, pixel_w, rot_x, origin_y,
  /// rot_y, -pixel_h}.
  const std::array<double, 6>& geotransform() const { return geotransform_; }
  void set_geotransform(const std::array<double, 6>& gt) {
    geotransform_ = gt;
  }

  /// (C, H, W) tensor view of the samples (copies).
  tensor::Tensor ToTensor() const;
  /// Builds an image from a (C, H, W) tensor.
  static RasterImage FromTensor(const tensor::Tensor& t);

 private:
  int64_t height_ = 0;
  int64_t width_ = 0;
  int64_t bands_ = 0;
  std::vector<float> data_;
  int32_t crs_epsg_ = 4326;
  std::array<double, 6> geotransform_ = {0.0, 1.0, 0.0, 0.0, 0.0, -1.0};
};

}  // namespace geotorch::raster

#endif  // GEOTORCH_RASTER_RASTER_H_
