#include "raster/raster.h"

#include <algorithm>

#include "core/check.h"

namespace geotorch::raster {

RasterImage::RasterImage(int64_t height, int64_t width, int64_t bands)
    : height_(height), width_(width), bands_(bands) {
  GEO_CHECK(height > 0 && width > 0 && bands > 0);
  data_.assign(height * width * bands, 0.0f);
}

float RasterImage::at(int64_t band, int64_t i, int64_t j) const {
  return const_cast<RasterImage*>(this)->at(band, i, j);
}

float& RasterImage::at(int64_t band, int64_t i, int64_t j) {
  GEO_CHECK(band >= 0 && band < bands_ && i >= 0 && i < height_ && j >= 0 &&
            j < width_)
      << "raster index (" << band << "," << i << "," << j << ") out of "
      << bands_ << "x" << height_ << "x" << width_;
  return data_[(band * height_ + i) * width_ + j];
}

const float* RasterImage::band_data(int64_t band) const {
  GEO_CHECK(band >= 0 && band < bands_);
  return data_.data() + band * PixelsPerBand();
}

float* RasterImage::band_data(int64_t band) {
  GEO_CHECK(band >= 0 && band < bands_);
  return data_.data() + band * PixelsPerBand();
}

tensor::Tensor RasterImage::ToTensor() const {
  // Pool-backed output + direct copy; FromVector(shape, data_) would
  // route the copy through a fresh heap vector instead.
  tensor::Tensor t = tensor::Tensor::Uninitialized({bands_, height_, width_});
  std::copy(data_.begin(), data_.end(), t.data());
  return t;
}

RasterImage RasterImage::FromTensor(const tensor::Tensor& t) {
  GEO_CHECK_EQ(t.ndim(), 3);
  RasterImage img(t.size(1), t.size(2), t.size(0));
  std::copy(t.data(), t.data() + t.numel(), img.data_.begin());
  return img;
}

}  // namespace geotorch::raster
