#include "raster/io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace geotorch::raster {
namespace {
constexpr char kMagic[5] = {'G', 'T', 'I', 'F', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteOne(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

}  // namespace

Status WriteGeotiffImage(const RasterImage& image, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 5, f.get()) != 5) {
    return Status::IoError("write failed: " + path);
  }
  const int64_t h = image.height();
  const int64_t w = image.width();
  const int64_t b = image.bands();
  const int32_t epsg = image.crs_epsg();
  if (!WriteOne(f.get(), h) || !WriteOne(f.get(), w) ||
      !WriteOne(f.get(), b) || !WriteOne(f.get(), epsg)) {
    return Status::IoError("write failed: " + path);
  }
  for (double g : image.geotransform()) {
    if (!WriteOne(f.get(), g)) return Status::IoError("write failed: " + path);
  }
  const size_t n = image.data().size();
  if (std::fwrite(image.data().data(), sizeof(float), n, f.get()) != n) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<RasterImage> LoadGeotiffImage(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[5];
  if (std::fread(magic, 1, 5, f.get()) != 5 ||
      std::memcmp(magic, kMagic, 5) != 0) {
    return Status::IoError("not a GTIF1 file: " + path);
  }
  int64_t h = 0;
  int64_t w = 0;
  int64_t b = 0;
  int32_t epsg = 0;
  if (!ReadOne(f.get(), &h) || !ReadOne(f.get(), &w) ||
      !ReadOne(f.get(), &b) || !ReadOne(f.get(), &epsg)) {
    return Status::IoError("corrupt GTIF1 header: " + path);
  }
  // Cap each dimension before multiplying: a hostile header with
  // h = w = b = 2^40 would overflow the int64 product and sail past a
  // product-only check. With these caps the product fits in 2^54.
  constexpr int64_t kMaxSide = int64_t{1} << 20;   // 1M pixels per side
  constexpr int64_t kMaxBands = int64_t{1} << 14;  // 16K bands
  constexpr int64_t kMaxElements = int64_t{1} << 31;
  if (h <= 0 || w <= 0 || b <= 0 || h > kMaxSide || w > kMaxSide ||
      b > kMaxBands || h * w * b > kMaxElements) {
    return Status::IoError("implausible GTIF1 dims: " + path);
  }
  std::array<double, 6> gt;
  for (double& g : gt) {
    if (!ReadOne(f.get(), &g)) {
      return Status::IoError("corrupt GTIF1 geotransform: " + path);
    }
  }
  // Cross-check the header against the actual file size before
  // allocating h*w*b floats — a truncated or lying file must fail with
  // a Status, not a multi-gigabyte allocation followed by a short read.
  const long header_end = std::ftell(f.get());
  if (header_end < 0 || std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IoError("cannot stat GTIF1 file: " + path);
  }
  const long file_end = std::ftell(f.get());
  if (file_end < 0 ||
      std::fseek(f.get(), header_end, SEEK_SET) != 0) {
    return Status::IoError("cannot stat GTIF1 file: " + path);
  }
  const int64_t payload_bytes =
      static_cast<int64_t>(file_end) - static_cast<int64_t>(header_end);
  const int64_t expected_bytes =
      h * w * b * static_cast<int64_t>(sizeof(float));
  if (payload_bytes < expected_bytes) {
    return Status::IoError("truncated GTIF1 payload: " + path);
  }
  RasterImage img(h, w, b);
  img.set_crs_epsg(epsg);
  img.set_geotransform(gt);
  const size_t n = img.data().size();
  if (std::fread(img.data().data(), sizeof(float), n, f.get()) != n) {
    return Status::IoError("truncated GTIF1 payload: " + path);
  }
  return img;
}

}  // namespace geotorch::raster
