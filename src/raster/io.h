#ifndef GEOTORCH_RASTER_IO_H_
#define GEOTORCH_RASTER_IO_H_

#include <string>

#include "core/status.h"
#include "raster/raster.h"

namespace geotorch::raster {

/// Writes a raster to the GTIF1 on-disk format — this repo's minimal
/// GeoTIFF stand-in (DESIGN.md §1): magic "GTIF1", int64 H/W/bands,
/// int32 EPSG, 6-double geotransform, float32 planes.
Status WriteGeotiffImage(const RasterImage& image, const std::string& path);

/// Reads a GTIF1 raster written by WriteGeotiffImage.
Result<RasterImage> LoadGeotiffImage(const std::string& path);

}  // namespace geotorch::raster

#endif  // GEOTORCH_RASTER_IO_H_
