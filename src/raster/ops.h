#ifndef GEOTORCH_RASTER_OPS_H_
#define GEOTORCH_RASTER_OPS_H_

#include <utility>
#include <vector>

#include "raster/raster.h"

namespace geotorch::raster {

// Transformation operations (Section III-B2): modify the spectral
// bands of a raster image.

/// (b1 - b2) / (b1 + b2), the normalized difference index — NDVI when
/// b1=NIR, b2=red; NDWI when b1=green, b2=NIR. Zero where the
/// denominator vanishes. Returns an H*W plane.
std::vector<float> NormalizedDifferenceIndex(const RasterImage& image,
                                             int64_t band1, int64_t band2);

/// Appends the normalized difference of two bands as a new band — the
/// transform exercised by Table VIII and Listing 7/9.
RasterImage AppendNormalizedDifferenceIndex(const RasterImage& image,
                                            int64_t band1, int64_t band2);

/// Appends an arbitrary plane (size H*W) as a new band.
RasterImage AppendBand(const RasterImage& image,
                       const std::vector<float>& plane);

/// Removes one band.
RasterImage DeleteBand(const RasterImage& image, int64_t band);

/// Min-max normalizes one band in place to [0, 1] (constant bands
/// become 0).
void NormalizeBandInPlace(RasterImage& image, int64_t band);

/// Zeroes samples above `upper` (when mask_upper) or below `lower`.
void MaskBandInPlace(RasterImage& image, int64_t band, float threshold,
                     bool mask_upper);

// Map-algebra operations: extract values/planes from raster images.

std::vector<float> AddBands(const RasterImage& image, int64_t band1,
                            int64_t band2);
std::vector<float> SubtractBands(const RasterImage& image, int64_t band1,
                                 int64_t band2);
std::vector<float> MultiplyBands(const RasterImage& image, int64_t band1,
                                 int64_t band2);
/// Elementwise division; 0 where the divisor vanishes.
std::vector<float> DivideBands(const RasterImage& image, int64_t band1,
                               int64_t band2);
/// Bitwise AND/OR of the integer-cast samples.
std::vector<float> BitwiseAndBands(const RasterImage& image, int64_t band1,
                                   int64_t band2);
std::vector<float> BitwiseOrBands(const RasterImage& image, int64_t band1,
                                  int64_t band2);

float BandMean(const RasterImage& image, int64_t band);
/// Most frequent value after rounding to the nearest integer.
float BandMode(const RasterImage& image, int64_t band);
std::vector<float> BandSquareRoot(const RasterImage& image, int64_t band);
/// Elementwise floating-point modulus of a band by `divisor`.
std::vector<float> BandModulo(const RasterImage& image, int64_t band,
                              float divisor);

// Georeferencing and geometric operations.

/// World coordinates of a pixel center, via the image's affine
/// geotransform: x = gt[0] + (j+0.5)*gt[1] + (i+0.5)*gt[2], etc.
std::pair<double, double> PixelToWorld(const RasterImage& image, int64_t i,
                                       int64_t j);

/// Pixel (row, col) containing a world coordinate; {-1, -1} when the
/// point falls outside the raster (assumes an axis-aligned transform).
std::pair<int64_t, int64_t> WorldToPixel(const RasterImage& image, double x,
                                         double y);

/// Crops a window [row0, row0+height) x [col0, col0+width) across all
/// bands, updating the geotransform origin accordingly.
RasterImage ClipRaster(const RasterImage& image, int64_t row0, int64_t col0,
                       int64_t height, int64_t width);

/// Nearest-neighbour resample to a new size, scaling the geotransform's
/// pixel dimensions.
RasterImage ResampleNearest(const RasterImage& image, int64_t new_height,
                            int64_t new_width);

}  // namespace geotorch::raster

#endif  // GEOTORCH_RASTER_OPS_H_
