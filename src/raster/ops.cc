#include "raster/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "core/check.h"

namespace geotorch::raster {
namespace {

template <typename Fn>
std::vector<float> BandBinaryOp(const RasterImage& image, int64_t band1,
                                int64_t band2, Fn fn) {
  const int64_t n = image.PixelsPerBand();
  const float* a = image.band_data(band1);
  const float* b = image.band_data(band2);
  std::vector<float> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = fn(a[i], b[i]);
  return out;
}

}  // namespace

std::vector<float> NormalizedDifferenceIndex(const RasterImage& image,
                                             int64_t band1, int64_t band2) {
  return BandBinaryOp(image, band1, band2, [](float a, float b) {
    const float denom = a + b;
    if (denom == 0.0f) return 0.0f;
    return (a - b) / denom;
  });
}

RasterImage AppendNormalizedDifferenceIndex(const RasterImage& image,
                                            int64_t band1, int64_t band2) {
  return AppendBand(image, NormalizedDifferenceIndex(image, band1, band2));
}

RasterImage AppendBand(const RasterImage& image,
                       const std::vector<float>& plane) {
  GEO_CHECK_EQ(static_cast<int64_t>(plane.size()), image.PixelsPerBand());
  RasterImage out(image.height(), image.width(), image.bands() + 1);
  out.set_crs_epsg(image.crs_epsg());
  out.set_geotransform(image.geotransform());
  std::memcpy(out.data().data(), image.data().data(),
              image.data().size() * sizeof(float));
  std::memcpy(out.band_data(image.bands()), plane.data(),
              plane.size() * sizeof(float));
  return out;
}

RasterImage DeleteBand(const RasterImage& image, int64_t band) {
  GEO_CHECK(band >= 0 && band < image.bands());
  GEO_CHECK_GT(image.bands(), 1) << "cannot delete the only band";
  RasterImage out(image.height(), image.width(), image.bands() - 1);
  out.set_crs_epsg(image.crs_epsg());
  out.set_geotransform(image.geotransform());
  int64_t dst = 0;
  for (int64_t b = 0; b < image.bands(); ++b) {
    if (b == band) continue;
    std::memcpy(out.band_data(dst), image.band_data(b),
                image.PixelsPerBand() * sizeof(float));
    ++dst;
  }
  return out;
}

void NormalizeBandInPlace(RasterImage& image, int64_t band) {
  float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();
  const auto [mn_it, mx_it] = std::minmax_element(d, d + n);
  const float mn = *mn_it;
  const float mx = *mx_it;
  const float range = mx - mn;
  if (range == 0.0f) {
    std::fill(d, d + n, 0.0f);
    return;
  }
  for (int64_t i = 0; i < n; ++i) d[i] = (d[i] - mn) / range;
}

void MaskBandInPlace(RasterImage& image, int64_t band, float threshold,
                     bool mask_upper) {
  float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();
  for (int64_t i = 0; i < n; ++i) {
    if (mask_upper ? d[i] > threshold : d[i] < threshold) d[i] = 0.0f;
  }
}

std::vector<float> AddBands(const RasterImage& image, int64_t band1,
                            int64_t band2) {
  return BandBinaryOp(image, band1, band2,
                      [](float a, float b) { return a + b; });
}
std::vector<float> SubtractBands(const RasterImage& image, int64_t band1,
                                 int64_t band2) {
  return BandBinaryOp(image, band1, band2,
                      [](float a, float b) { return a - b; });
}
std::vector<float> MultiplyBands(const RasterImage& image, int64_t band1,
                                 int64_t band2) {
  return BandBinaryOp(image, band1, band2,
                      [](float a, float b) { return a * b; });
}
std::vector<float> DivideBands(const RasterImage& image, int64_t band1,
                               int64_t band2) {
  return BandBinaryOp(image, band1, band2, [](float a, float b) {
    return b == 0.0f ? 0.0f : a / b;
  });
}
std::vector<float> BitwiseAndBands(const RasterImage& image, int64_t band1,
                                   int64_t band2) {
  return BandBinaryOp(image, band1, band2, [](float a, float b) {
    return static_cast<float>(static_cast<int64_t>(a) &
                              static_cast<int64_t>(b));
  });
}
std::vector<float> BitwiseOrBands(const RasterImage& image, int64_t band1,
                                  int64_t band2) {
  return BandBinaryOp(image, band1, band2, [](float a, float b) {
    return static_cast<float>(static_cast<int64_t>(a) |
                              static_cast<int64_t>(b));
  });
}

float BandMean(const RasterImage& image, int64_t band) {
  const float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += d[i];
  return static_cast<float>(s / static_cast<double>(n));
}

float BandMode(const RasterImage& image, int64_t band) {
  const float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();
  std::unordered_map<int64_t, int64_t> counts;
  for (int64_t i = 0; i < n; ++i) {
    ++counts[static_cast<int64_t>(std::lround(d[i]))];
  }
  int64_t best_v = 0;
  int64_t best_c = -1;
  for (const auto& [v, c] : counts) {
    if (c > best_c || (c == best_c && v < best_v)) {
      best_c = c;
      best_v = v;
    }
  }
  return static_cast<float>(best_v);
}

std::vector<float> BandSquareRoot(const RasterImage& image, int64_t band) {
  const float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();
  std::vector<float> out(n);
  for (int64_t i = 0; i < n; ++i) {
    out[i] = d[i] >= 0.0f ? std::sqrt(d[i]) : 0.0f;
  }
  return out;
}

std::vector<float> BandModulo(const RasterImage& image, int64_t band,
                              float divisor) {
  GEO_CHECK_NE(divisor, 0.0f);
  const float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();
  std::vector<float> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = std::fmod(d[i], divisor);
  return out;
}

std::pair<double, double> PixelToWorld(const RasterImage& image, int64_t i,
                                       int64_t j) {
  const auto& gt = image.geotransform();
  const double px = j + 0.5;
  const double py = i + 0.5;
  return {gt[0] + px * gt[1] + py * gt[2], gt[3] + px * gt[4] + py * gt[5]};
}

std::pair<int64_t, int64_t> WorldToPixel(const RasterImage& image, double x,
                                         double y) {
  const auto& gt = image.geotransform();
  GEO_CHECK(gt[2] == 0.0 && gt[4] == 0.0)
      << "WorldToPixel supports axis-aligned transforms only";
  GEO_CHECK(gt[1] != 0.0 && gt[5] != 0.0);
  const int64_t j = static_cast<int64_t>((x - gt[0]) / gt[1]);
  const int64_t i = static_cast<int64_t>((y - gt[3]) / gt[5]);
  if (i < 0 || i >= image.height() || j < 0 || j >= image.width()) {
    return {-1, -1};
  }
  return {i, j};
}

RasterImage ClipRaster(const RasterImage& image, int64_t row0, int64_t col0,
                       int64_t height, int64_t width) {
  GEO_CHECK(row0 >= 0 && col0 >= 0 && height > 0 && width > 0 &&
            row0 + height <= image.height() && col0 + width <= image.width())
      << "clip window out of bounds";
  RasterImage out(height, width, image.bands());
  out.set_crs_epsg(image.crs_epsg());
  auto gt = image.geotransform();
  gt[0] += col0 * gt[1] + row0 * gt[2];
  gt[3] += col0 * gt[4] + row0 * gt[5];
  out.set_geotransform(gt);
  for (int64_t b = 0; b < image.bands(); ++b) {
    for (int64_t i = 0; i < height; ++i) {
      std::memcpy(out.band_data(b) + i * width,
                  image.band_data(b) + (row0 + i) * image.width() + col0,
                  width * sizeof(float));
    }
  }
  return out;
}

RasterImage ResampleNearest(const RasterImage& image, int64_t new_height,
                            int64_t new_width) {
  GEO_CHECK(new_height > 0 && new_width > 0);
  RasterImage out(new_height, new_width, image.bands());
  out.set_crs_epsg(image.crs_epsg());
  auto gt = image.geotransform();
  gt[1] *= static_cast<double>(image.width()) / new_width;
  gt[5] *= static_cast<double>(image.height()) / new_height;
  out.set_geotransform(gt);
  for (int64_t b = 0; b < image.bands(); ++b) {
    for (int64_t i = 0; i < new_height; ++i) {
      const int64_t si = i * image.height() / new_height;
      for (int64_t j = 0; j < new_width; ++j) {
        const int64_t sj = j * image.width() / new_width;
        out.at(b, i, j) = image.at(b, si, sj);
      }
    }
  }
  return out;
}

}  // namespace geotorch::raster
