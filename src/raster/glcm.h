#ifndef GEOTORCH_RASTER_GLCM_H_
#define GEOTORCH_RASTER_GLCM_H_

#include <vector>

#include "raster/raster.h"

namespace geotorch::raster {

/// Texture statistics derived from the gray-level co-occurrence matrix
/// (Section III-B2). These are the handcrafted features DeepSAT-V2
/// fuses into its classifier.
struct GlcmFeatures {
  float contrast = 0.0f;       ///< sum p(i,j) * (i-j)^2
  float dissimilarity = 0.0f;  ///< sum p(i,j) * |i-j|
  float homogeneity = 0.0f;    ///< sum p(i,j) / (1 + (i-j)^2)
  float asm_value = 0.0f;      ///< angular second moment: sum p^2
  float energy = 0.0f;         ///< sqrt(ASM)
  float correlation = 0.0f;    ///< normalized covariance of (i, j)
  float entropy = 0.0f;        ///< -sum p * log(p)
};

/// Computes the symmetric, normalized GLCM of one band at displacement
/// (dx, dy) after quantizing samples to `levels` gray levels
/// (min-max over the band), then derives the features above.
GlcmFeatures ComputeGlcmFeatures(const RasterImage& image, int64_t band,
                                 int levels = 16, int dx = 1, int dy = 0);

/// The six GLCM values used by the paper's DeepSAT-V2 evaluation
/// (contrast, dissimilarity, correlation, homogeneity, ASM ["momentum"],
/// energy), averaged over the 0-degree and 90-degree displacements.
std::vector<float> GlcmFeatureVector(const RasterImage& image, int64_t band,
                                     int levels = 16);

}  // namespace geotorch::raster

#endif  // GEOTORCH_RASTER_GLCM_H_
