#include "raster/glcm.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace geotorch::raster {

GlcmFeatures ComputeGlcmFeatures(const RasterImage& image, int64_t band,
                                 int levels, int dx, int dy) {
  GEO_CHECK_GE(levels, 2);
  const int64_t h = image.height();
  const int64_t w = image.width();
  const float* d = image.band_data(band);
  const int64_t n = image.PixelsPerBand();

  // Quantize to [0, levels).
  const auto [mn_it, mx_it] = std::minmax_element(d, d + n);
  const float mn = *mn_it;
  const float range = *mx_it - mn;
  std::vector<int> q(n);
  if (range == 0.0f) {
    std::fill(q.begin(), q.end(), 0);
  } else {
    for (int64_t i = 0; i < n; ++i) {
      int level = static_cast<int>((d[i] - mn) / range * levels);
      q[i] = std::min(level, levels - 1);
    }
  }

  // Symmetric co-occurrence counts at displacement (dx, dy).
  std::vector<double> glcm(static_cast<size_t>(levels) * levels, 0.0);
  double total = 0.0;
  for (int64_t i = 0; i < h; ++i) {
    const int64_t i2 = i + dy;
    if (i2 < 0 || i2 >= h) continue;
    for (int64_t j = 0; j < w; ++j) {
      const int64_t j2 = j + dx;
      if (j2 < 0 || j2 >= w) continue;
      const int a = q[i * w + j];
      const int b = q[i2 * w + j2];
      glcm[a * levels + b] += 1.0;
      glcm[b * levels + a] += 1.0;
      total += 2.0;
    }
  }

  GlcmFeatures out;
  if (total == 0.0) return out;

  // Marginal stats for correlation.
  double mean_i = 0.0;
  for (int a = 0; a < levels; ++a) {
    for (int b = 0; b < levels; ++b) {
      const double p = glcm[a * levels + b] / total;
      mean_i += a * p;
    }
  }
  double var_i = 0.0;
  for (int a = 0; a < levels; ++a) {
    for (int b = 0; b < levels; ++b) {
      const double p = glcm[a * levels + b] / total;
      var_i += (a - mean_i) * (a - mean_i) * p;
    }
  }

  double contrast = 0.0;
  double dissimilarity = 0.0;
  double homogeneity = 0.0;
  double asm_value = 0.0;
  double correlation = 0.0;
  double entropy = 0.0;
  for (int a = 0; a < levels; ++a) {
    for (int b = 0; b < levels; ++b) {
      const double p = glcm[a * levels + b] / total;
      const double diff = a - b;
      contrast += p * diff * diff;
      dissimilarity += p * std::fabs(diff);
      homogeneity += p / (1.0 + diff * diff);
      asm_value += p * p;
      if (p > 0.0) entropy -= p * std::log(p);
      if (var_i > 0.0) {
        correlation += (a - mean_i) * (b - mean_i) * p / var_i;
      }
    }
  }
  out.contrast = static_cast<float>(contrast);
  out.dissimilarity = static_cast<float>(dissimilarity);
  out.homogeneity = static_cast<float>(homogeneity);
  out.asm_value = static_cast<float>(asm_value);
  out.energy = static_cast<float>(std::sqrt(asm_value));
  out.correlation = static_cast<float>(var_i > 0.0 ? correlation : 1.0);
  out.entropy = static_cast<float>(entropy);
  return out;
}

std::vector<float> GlcmFeatureVector(const RasterImage& image, int64_t band,
                                     int levels) {
  const GlcmFeatures f0 = ComputeGlcmFeatures(image, band, levels, 1, 0);
  const GlcmFeatures f90 = ComputeGlcmFeatures(image, band, levels, 0, 1);
  auto avg = [](float a, float b) { return (a + b) / 2.0f; };
  return {avg(f0.contrast, f90.contrast),
          avg(f0.dissimilarity, f90.dissimilarity),
          avg(f0.correlation, f90.correlation),
          avg(f0.homogeneity, f90.homogeneity),
          avg(f0.asm_value, f90.asm_value),
          avg(f0.energy, f90.energy)};
}

}  // namespace geotorch::raster
