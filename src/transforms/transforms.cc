#include "transforms/transforms.h"

#include <memory>

#include "core/check.h"
#include "core/rng.h"
#include "raster/glcm.h"
#include "raster/raster.h"
#include "tensor/ops.h"

namespace geotorch::transforms {

namespace ts = ::geotorch::tensor;

Transform Compose(std::vector<Transform> transforms) {
  return [transforms = std::move(transforms)](const ts::Tensor& x) {
    ts::Tensor cur = x;
    for (const auto& t : transforms) cur = t(cur);
    return cur;
  };
}

Transform AppendNormalizedDifferenceIndex(int64_t band1, int64_t band2) {
  return [band1, band2](const ts::Tensor& x) {
    GEO_CHECK_EQ(x.ndim(), 3);
    GEO_CHECK(band1 >= 0 && band1 < x.size(0) && band2 >= 0 &&
              band2 < x.size(0))
        << "NDI bands out of range";
    const int64_t h = x.size(1);
    const int64_t w = x.size(2);
    ts::Tensor ndi({1, h, w});
    const float* a = x.data() + band1 * h * w;
    const float* b = x.data() + band2 * h * w;
    float* o = ndi.data();
    for (int64_t i = 0; i < h * w; ++i) {
      const float denom = a[i] + b[i];
      o[i] = denom == 0.0f ? 0.0f : (a[i] - b[i]) / denom;
    }
    return ts::Concat({x, ndi}, 0);
  };
}

Transform Normalize(std::vector<float> mean, std::vector<float> stddev) {
  GEO_CHECK_EQ(mean.size(), stddev.size());
  return [mean = std::move(mean),
          stddev = std::move(stddev)](const ts::Tensor& x) {
    GEO_CHECK_EQ(x.ndim(), 3);
    GEO_CHECK_EQ(x.size(0), static_cast<int64_t>(mean.size()));
    ts::Tensor out = x.Clone();
    const int64_t plane = x.size(1) * x.size(2);
    float* d = out.data();
    for (int64_t c = 0; c < x.size(0); ++c) {
      GEO_CHECK_GT(stddev[c], 0.0f);
      for (int64_t i = 0; i < plane; ++i) {
        d[c * plane + i] = (d[c * plane + i] - mean[c]) / stddev[c];
      }
    }
    return out;
  };
}

Transform MinMaxScale(float lo, float hi) {
  GEO_CHECK_LT(lo, hi);
  return [lo, hi](const ts::Tensor& x) {
    const float mn = ts::MinAll(x);
    const float mx = ts::MaxAll(x);
    const float range = mx - mn;
    if (range == 0.0f) return ts::Tensor::Full(x.shape(), lo);
    ts::Tensor out = x.Clone();
    float* d = out.data();
    for (int64_t i = 0; i < out.numel(); ++i) {
      d[i] = lo + (d[i] - mn) / range * (hi - lo);
    }
    return out;
  };
}

Transform SelectBands(std::vector<int64_t> bands) {
  GEO_CHECK(!bands.empty());
  return [bands = std::move(bands)](const ts::Tensor& x) {
    GEO_CHECK_EQ(x.ndim(), 3);
    std::vector<ts::Tensor> parts;
    parts.reserve(bands.size());
    for (int64_t b : bands) {
      GEO_CHECK(b >= 0 && b < x.size(0));
      parts.push_back(ts::Slice(x, 0, b, b + 1));
    }
    return ts::Concat(parts, 0);
  };
}

Transform RandomHorizontalFlip(float p, uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  return [p, rng](const ts::Tensor& x) {
    GEO_CHECK_EQ(x.ndim(), 3);
    if (!rng->Bernoulli(p)) return x;
    ts::Tensor out(x.shape());
    const int64_t c = x.size(0);
    const int64_t h = x.size(1);
    const int64_t w = x.size(2);
    const float* src = x.data();
    float* dst = out.data();
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t i = 0; i < h; ++i) {
        const float* s = src + (ci * h + i) * w;
        float* d = dst + (ci * h + i) * w;
        for (int64_t j = 0; j < w; ++j) d[j] = s[w - 1 - j];
      }
    }
    return out;
  };
}

Transform GaussianNoise(float stddev, uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  return [stddev, rng](const ts::Tensor& x) {
    ts::Tensor out = x.Clone();
    float* d = out.data();
    for (int64_t i = 0; i < out.numel(); ++i) {
      d[i] += static_cast<float>(rng->Normal(0.0, stddev));
    }
    return out;
  };
}

Transform AppendGlcmContrastChannel(int64_t band, int levels) {
  return [band, levels](const ts::Tensor& x) {
    GEO_CHECK_EQ(x.ndim(), 3);
    GEO_CHECK(band >= 0 && band < x.size(0));
    raster::RasterImage img = raster::RasterImage::FromTensor(x);
    const raster::GlcmFeatures f =
        raster::ComputeGlcmFeatures(img, band, levels);
    ts::Tensor channel =
        ts::Tensor::Full({1, x.size(1), x.size(2)}, f.contrast);
    return ts::Concat({x, channel}, 0);
  };
}

Transform AppendGlcmFeatureChannels(int64_t band, int levels) {
  return [band, levels](const ts::Tensor& x) {
    GEO_CHECK_EQ(x.ndim(), 3);
    GEO_CHECK(band >= 0 && band < x.size(0));
    raster::RasterImage img = raster::RasterImage::FromTensor(x);
    const std::vector<float> features =
        raster::GlcmFeatureVector(img, band, levels);
    std::vector<ts::Tensor> parts = {x};
    for (float f : features) {
      parts.push_back(ts::Tensor::Full({1, x.size(1), x.size(2)}, f));
    }
    return ts::Concat(parts, 0);
  };
}

}  // namespace geotorch::transforms
