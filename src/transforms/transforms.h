#ifndef GEOTORCH_TRANSFORMS_TRANSFORMS_H_
#define GEOTORCH_TRANSFORMS_TRANSFORMS_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace geotorch::transforms {

/// A per-sample transformation over a (C, H, W) tensor, applied on the
/// fly during iteration — the geotorchai.transforms equivalent
/// (Listing 7). Chain with Compose.
using Transform = std::function<tensor::Tensor(const tensor::Tensor&)>;

/// Applies `transforms` left to right (torchvision.transforms.Compose).
Transform Compose(std::vector<Transform> transforms);

/// Appends (band1 - band2) / (band1 + band2) as a new channel — the
/// transform used throughout Table VIII.
Transform AppendNormalizedDifferenceIndex(int64_t band1, int64_t band2);

/// Per-channel standardization: (x - mean[c]) / std[c].
Transform Normalize(std::vector<float> mean, std::vector<float> stddev);

/// Min-max scales the whole tensor to [lo, hi].
Transform MinMaxScale(float lo = 0.0f, float hi = 1.0f);

/// Keeps the listed channels, in order.
Transform SelectBands(std::vector<int64_t> bands);

/// Horizontally flips the image with probability p (deterministic
/// given the seed; stateful across calls).
Transform RandomHorizontalFlip(float p = 0.5f, uint64_t seed = 0);

/// Adds i.i.d. Gaussian noise (augmentation / robustness testing).
Transform GaussianNoise(float stddev, uint64_t seed = 0);

/// Appends a constant channel holding the GLCM contrast of `band` —
/// texture-feature fusion as an on-the-fly transform. Feature
/// extraction during training is exactly the cost the paper's
/// Limitation 4 warns about; the Table VIII harness uses this to
/// compare on-the-fly vs offline extraction.
Transform AppendGlcmContrastChannel(int64_t band, int levels = 16);

/// Appends the six GLCM texture features of `band` (contrast,
/// dissimilarity, correlation, homogeneity, ASM, energy) as six
/// constant channels, computed at full 8-bit resolution (256 gray
/// levels, two displacements) — the DeepSAT-V2 feature set as an
/// on-the-fly transform.
Transform AppendGlcmFeatureChannels(int64_t band, int levels = 256);

}  // namespace geotorch::transforms

#endif  // GEOTORCH_TRANSFORMS_TRANSFORMS_H_
