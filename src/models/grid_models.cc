#include "models/grid_models.h"

#include "core/check.h"

namespace geotorch::models {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

namespace {

// Concatenates x and extras along channels: the full periodical input.
ag::Variable PeriodicalInput(const data::Batch& batch) {
  ag::Variable x(batch.x);
  if (batch.extras.empty()) return x;
  std::vector<ag::Variable> parts = {x};
  for (const auto& e : batch.extras) parts.emplace_back(e);
  return ag::Concat(parts, 1);
}

int64_t PeriodicalInputChannels(const GridModelConfig& c) {
  return (c.len_closeness + c.len_period + c.len_trend) * c.channels;
}

}  // namespace

// --- PeriodicalCnn -----------------------------------------------------------

PeriodicalCnn::PeriodicalCnn(const GridModelConfig& config)
    : config_(config),
      conv1_(PeriodicalInputChannels(config), config.hidden, 3,
             *std::make_unique<Rng>(config.seed), 1, 1),
      conv2_(config.hidden, config.hidden, 3,
             *std::make_unique<Rng>(config.seed + 1), 1, 1),
      conv3_(config.hidden, config.channels, 3,
             *std::make_unique<Rng>(config.seed + 2), 1, 1) {
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
  RegisterModule("conv3", &conv3_);
}

ag::Variable PeriodicalCnn::Forward(const data::Batch& batch) {
  ag::Variable h = PeriodicalInput(batch);
  if (nn::FusedEvalEligible(*this)) {
    h = conv1_.ForwardFusedEval(h, nullptr, ts::EpilogueAct::kRelu);
    h = conv2_.ForwardFusedEval(h, nullptr, ts::EpilogueAct::kRelu);
  } else {
    h = ag::Relu(conv1_.Forward(h));
    h = ag::Relu(conv2_.Forward(h));
  }
  return conv3_.Forward(h);
}

// --- ConvLstm ----------------------------------------------------------------

ConvLstm::ConvLstm(const GridModelConfig& config, int64_t prediction_length,
                   int64_t kernel)
    : config_(config),
      prediction_length_(prediction_length),
      cell_(config.channels, config.hidden, kernel,
            *std::make_unique<Rng>(config.seed)),
      head_(config.hidden, config.channels, 1,
            *std::make_unique<Rng>(config.seed + 1)) {
  RegisterModule("cell", &cell_);
  RegisterModule("head", &head_);
}

ag::Variable ConvLstm::Forward(const data::Batch& batch) {
  GEO_CHECK_EQ(static_cast<int>(batch.x.ndim()), 5)
      << "ConvLSTM expects the sequential representation (B, T, C, H, W)";
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  const int64_t h = batch.x.size(3);
  const int64_t w = batch.x.size(4);
  ag::Variable x(batch.x);

  nn::ConvLstmCell::State state = cell_.InitialState(b, h, w);
  ag::Variable frame;
  for (int64_t step = 0; step < t; ++step) {
    frame = ag::Reshape(ag::Slice(x, 1, step, step + 1), {b, c, h, w});
    state = cell_.Step(frame, state);
  }
  // Decode: feed back the model's own prediction.
  std::vector<ag::Variable> outputs;
  ag::Variable prev = frame;  // last observed frame
  for (int64_t step = 0; step < prediction_length_; ++step) {
    state = cell_.Step(prev, state);
    ag::Variable pred = head_.Forward(state.h);
    outputs.push_back(ag::Reshape(pred, {b, 1, c, h, w}));
    prev = pred;
  }
  if (outputs.size() == 1) return outputs[0];
  return ag::Concat(outputs, 1);
}

// --- StResNet ------------------------------------------------------------------

ResUnit::ResUnit(int64_t channels, Rng& rng)
    : conv1_(channels, channels, 3, rng, 1, 1),
      conv2_(channels, channels, 3, rng, 1, 1) {
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
}

ag::Variable ResUnit::Forward(const ag::Variable& x) {
  ag::Variable h = conv1_.Forward(ag::Relu(x));
  h = conv2_.Forward(ag::Relu(h));
  return ag::Add(x, h);
}

StResNet::StResNet(const GridModelConfig& config, int num_res_units,
                   int64_t external_dim)
    : config_(config), external_dim_(external_dim) {
  Rng rng(config.seed);
  auto make_branch = [&](Branch& branch, int64_t len, const char* name) {
    branch.in_conv = std::make_unique<nn::Conv2d>(
        len * config.channels, config.hidden, 3, rng, 1, 1);
    RegisterModule(std::string(name) + ".in", branch.in_conv.get());
    for (int u = 0; u < num_res_units; ++u) {
      branch.res_units.push_back(
          std::make_unique<ResUnit>(config.hidden, rng));
      RegisterModule(std::string(name) + ".res" + std::to_string(u),
                     branch.res_units.back().get());
    }
    branch.out_conv = std::make_unique<nn::Conv2d>(config.hidden,
                                                   config.channels, 3, rng,
                                                   1, 1);
    RegisterModule(std::string(name) + ".out", branch.out_conv.get());
  };
  make_branch(closeness_, config.len_closeness, "closeness");
  make_branch(period_, config.len_period, "period");
  make_branch(trend_, config.len_trend, "trend");

  const ts::Shape fusion_shape = {1, config.channels, config.height,
                                  config.width};
  // Fusion matrices start at 1 (all branches contribute equally) —
  // random init slows early convergence noticeably.
  w_closeness_ =
      RegisterParameter("w_closeness", ts::Tensor::Ones(fusion_shape));
  w_period_ = RegisterParameter("w_period", ts::Tensor::Ones(fusion_shape));
  w_trend_ = RegisterParameter("w_trend", ts::Tensor::Ones(fusion_shape));
  if (external_dim_ > 0) {
    external_fc_ = std::make_unique<nn::Linear>(
        external_dim_, config.channels * config.height * config.width, rng);
    RegisterModule("external", external_fc_.get());
  }
}

ag::Variable StResNet::RunBranch(Branch& branch, const ag::Variable& x) {
  ag::Variable h = branch.in_conv->Forward(x);
  for (auto& unit : branch.res_units) h = unit->Forward(h);
  return branch.out_conv->Forward(ag::Relu(h));
}

ag::Variable StResNet::Forward(const data::Batch& batch) {
  GEO_CHECK_GE(batch.extras.size(), 2u)
      << "ST-ResNet expects the periodical representation "
         "(closeness + period + trend)";
  ag::Variable xc = RunBranch(closeness_, ag::Variable(batch.x));
  ag::Variable xp = RunBranch(period_, ag::Variable(batch.extras[0]));
  ag::Variable xq = RunBranch(trend_, ag::Variable(batch.extras[1]));
  // Parametric-matrix fusion.
  ag::Variable fused = ag::Add(
      ag::Add(ag::Mul(w_closeness_, xc), ag::Mul(w_period_, xp)),
      ag::Mul(w_trend_, xq));
  if (external_dim_ > 0 && batch.extras.size() >= 3) {
    ag::Variable ext = external_fc_->Forward(ag::Variable(batch.extras[2]));
    fused = ag::Add(fused,
                    ag::Reshape(ext, {batch.x.size(0), config_.channels,
                                      config_.height, config_.width}));
  }
  return fused;
}

// --- DeepStnPlus ----------------------------------------------------------------

DeepStnPlus::DeepStnPlus(const GridModelConfig& config, int num_blocks)
    : config_(config) {
  Rng rng(config.seed + 7);
  fuse_conv_ = std::make_unique<nn::Conv2d>(PeriodicalInputChannels(config),
                                            config.hidden, 3, rng, 1, 1);
  RegisterModule("fuse", fuse_conv_.get());
  for (int i = 0; i < num_blocks; ++i) {
    ConvPlusBlock block;
    block.conv = std::make_unique<nn::Conv2d>(config.hidden, config.hidden,
                                              3, rng, 1, 1);
    block.context_fc =
        std::make_unique<nn::Linear>(config.hidden, config.hidden, rng);
    RegisterModule("block" + std::to_string(i) + ".conv", block.conv.get());
    RegisterModule("block" + std::to_string(i) + ".ctx",
                   block.context_fc.get());
    blocks_.push_back(std::move(block));
  }
  out_conv_ = std::make_unique<nn::Conv2d>(config.hidden, config.channels, 3,
                                           rng, 1, 1);
  RegisterModule("out", out_conv_.get());
  residual_scale_ = RegisterParameter(
      "residual_scale",
      ts::Tensor::Ones({1, config.channels, config.height, config.width}));
}

ag::Variable DeepStnPlus::RunConvPlus(ConvPlusBlock& block,
                                      const ag::Variable& x) {
  ag::Variable local = block.conv->Forward(x);
  // Global context: GAP -> FC -> broadcast back over space.
  ag::Variable gap = ag::Mean(ag::Mean(x, 2, true), 3, true);
  const int64_t b = x.shape()[0];
  const int64_t ch = x.shape()[1];
  ag::Variable ctx = block.context_fc->Forward(ag::Reshape(gap, {b, ch}));
  ctx = ag::Reshape(ctx, {b, ch, 1, 1});
  return ag::Relu(ag::Add(ag::Add(local, ctx), x));  // residual ConvPlus
}

ag::Variable DeepStnPlus::Forward(const data::Batch& batch) {
  GEO_CHECK_GE(batch.extras.size(), 2u)
      << "DeepSTN+ expects the periodical representation";
  ag::Variable h = ag::Relu(fuse_conv_->Forward(PeriodicalInput(batch)));
  for (auto& block : blocks_) h = RunConvPlus(block, h);
  ag::Variable correction = out_conv_->Forward(h);
  // Persistence residual: prediction = scale .* last closeness frame
  // + learned correction.
  const int64_t c = config_.channels;
  const int64_t lc = config_.len_closeness;
  ag::Variable last_frame =
      ag::Slice(ag::Variable(batch.x), 1, (lc - 1) * c, lc * c);
  return ag::Add(ag::Mul(residual_scale_, last_frame), correction);
}

// --- CnnLstm -----------------------------------------------------------------

CnnLstm::CnnLstm(const GridModelConfig& config)
    : config_(config),
      conv1_(config.channels, config.hidden, 3,
             *std::make_unique<Rng>(config.seed + 21), 1, 1),
      conv2_(config.hidden, config.hidden, 3,
             *std::make_unique<Rng>(config.seed + 22), 2, 1),
      feature_dim_(config.hidden *
                   ((config.height + 1) / 2) * ((config.width + 1) / 2)),
      lstm_(feature_dim_, 2 * config.hidden,
            *std::make_unique<Rng>(config.seed + 23)) {
  Rng rng(config.seed + 24);
  head_ = std::make_unique<nn::Linear>(
      2 * config.hidden, config.channels * config.height * config.width,
      rng);
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
  RegisterModule("lstm", &lstm_);
  RegisterModule("head", head_.get());
}

ag::Variable CnnLstm::Forward(const data::Batch& batch) {
  GEO_CHECK_EQ(static_cast<int>(batch.x.ndim()), 5)
      << "CnnLstm expects the sequential representation (B, T, C, H, W)";
  const int64_t b = batch.x.size(0);
  const int64_t t = batch.x.size(1);
  const int64_t c = batch.x.size(2);
  const int64_t h = batch.x.size(3);
  const int64_t w = batch.x.size(4);
  ag::Variable x(batch.x);

  nn::LstmCell::State state = lstm_.InitialState(b);
  for (int64_t step = 0; step < t; ++step) {
    ag::Variable frame =
        ag::Reshape(ag::Slice(x, 1, step, step + 1), {b, c, h, w});
    ag::Variable feat;
    if (nn::FusedEvalEligible(*this)) {
      feat = conv1_.ForwardFusedEval(frame, nullptr, ts::EpilogueAct::kRelu);
      // stride-2 local summary
      feat = conv2_.ForwardFusedEval(feat, nullptr, ts::EpilogueAct::kRelu);
    } else {
      feat = ag::Relu(conv1_.Forward(frame));
      feat = ag::Relu(conv2_.Forward(feat));  // stride-2 local summary
    }
    state = lstm_.Step(ag::Reshape(feat, {b, feature_dim_}), state);
  }
  ag::Variable out = head_->Forward(state.h);
  return ag::Reshape(out, {b, 1, c, h, w});
}

}  // namespace geotorch::models
