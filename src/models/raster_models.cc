#include "models/raster_models.h"

#include "core/check.h"

namespace geotorch::models {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

namespace {
// Stage-wise pooling decisions are made in the constructors: a stage
// pools only while both spatial dims stay even, so 28x28 (SAT-4/6) and
// 64x64 (EuroSAT) inputs both work.
}  // namespace

// --- SatCnn ---------------------------------------------------------------

SatCnn::SatCnn(const RasterModelConfig& config)
    : config_(config), dropout_(0.3f, config.seed + 99) {
  Rng rng(config.seed);
  const int64_t f = config.base_filters;
  // Deep "agile CNN": two convolutions per stage, three stages; each
  // stage pools 2x while the spatial dims stay even.
  int64_t oh = config.in_height;
  int64_t ow = config.in_width;
  const int64_t widths[4] = {config.in_channels, f, 2 * f, 2 * f};
  for (int stage = 0; stage < 3; ++stage) {
    features_net_
        .Emplace<nn::Conv2d>(widths[stage], widths[stage + 1], 3, rng, 1, 1)
        .Emplace<nn::ReluLayer>()
        .Emplace<nn::Conv2d>(widths[stage + 1], widths[stage + 1], 3, rng, 1,
                             1)
        .Emplace<nn::ReluLayer>();
    if (oh % 2 == 0 && ow % 2 == 0) {
      features_net_.Emplace<nn::MaxPool2d>(2);
      oh /= 2;
      ow /= 2;
    }
  }
  flat_size_ = 2 * f * oh * ow;
  fc1_ = std::make_unique<nn::Linear>(flat_size_, 4 * f, rng);
  fc2_ = std::make_unique<nn::Linear>(4 * f, config.num_classes, rng);
  RegisterModule("features", &features_net_);
  RegisterModule("fc1", fc1_.get());
  RegisterModule("fc2", fc2_.get());
  RegisterModule("dropout", &dropout_);
}

ag::Variable SatCnn::Forward(const ag::Variable& x,
                             const ag::Variable& features) {
  (void)features;  // SatCNN is image-only.
  const bool fused = nn::FusedEvalEligible(*this);
  ag::Variable h = features_net_.Forward(x);
  h = ag::Reshape(h, {x.shape()[0], flat_size_});
  h = fused ? fc1_->ForwardFusedEval(h, ts::EpilogueAct::kRelu)
            : ag::Relu(fc1_->Forward(h));
  h = dropout_.Forward(h);
  return fc2_->Forward(h);
}

// --- DeepSat ----------------------------------------------------------------

DeepSat::DeepSat(const RasterModelConfig& config)
    : config_(config), dropout_(0.2f, config.seed + 103) {
  GEO_CHECK_GT(config.num_filtered_features, 0)
      << "DeepSAT is feature-driven; configure num_filtered_features";
  Rng rng(config.seed + 2);
  const int64_t in_dim =
      config.num_filtered_features + 2 * config.in_channels;
  const int64_t hidden = 4 * config.base_filters;
  fc1_ = std::make_unique<nn::Linear>(in_dim, hidden, rng);
  fc2_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  fc3_ = std::make_unique<nn::Linear>(hidden, config.num_classes, rng);
  RegisterModule("fc1", fc1_.get());
  RegisterModule("fc2", fc2_.get());
  RegisterModule("fc3", fc3_.get());
  RegisterModule("dropout", &dropout_);
}

ag::Variable DeepSat::Forward(const ag::Variable& x,
                              const ag::Variable& features) {
  GEO_CHECK(features.defined()) << "DeepSAT needs the feature vector";
  // Per-band mean and stddev of the image, computed on the fly.
  ag::Variable mean = ag::Mean(ag::Mean(x, 2, false), 2, false);  // (B, C)
  ag::Variable sq_mean =
      ag::Mean(ag::Mean(ag::Mul(x, x), 2, false), 2, false);
  ag::Variable var = ag::Sub(sq_mean, ag::Mul(mean, mean));
  ag::Variable stddev = ag::Sqrt(ag::AddScalar(var, 1e-6f));
  ag::Variable h = ag::Concat({features, mean, stddev}, 1);
  const bool fused = nn::FusedEvalEligible(*this);
  h = fused ? fc1_->ForwardFusedEval(h, ts::EpilogueAct::kRelu)
            : ag::Relu(fc1_->Forward(h));
  h = dropout_.Forward(h);
  h = fused ? fc2_->ForwardFusedEval(h, ts::EpilogueAct::kRelu)
            : ag::Relu(fc2_->Forward(h));
  return fc3_->Forward(h);
}

// --- DeepSatV2 ------------------------------------------------------------

DeepSatV2::DeepSatV2(const RasterModelConfig& config)
    : config_(config), dropout_(0.3f, config.seed + 101) {
  Rng rng(config.seed + 1);
  const int64_t f = config.base_filters;
  // Fewer convolution layers than SatCNN (the paper notes DeepSAT-V2 is
  // the lighter model); accuracy comes from the feature fusion.
  int64_t oh = config.in_height;
  int64_t ow = config.in_width;
  for (int stage = 0; stage < 2; ++stage) {
    conv_net_
        .Emplace<nn::Conv2d>(stage == 0 ? config.in_channels : f, f, 3, rng,
                             1, 1)
        .Emplace<nn::ReluLayer>();
    if (oh % 2 == 0 && ow % 2 == 0) {
      conv_net_.Emplace<nn::MaxPool2d>(2);
      oh /= 2;
      ow /= 2;
    }
  }
  flat_size_ = f * oh * ow;
  fc1_ = std::make_unique<nn::Linear>(
      flat_size_ + config.num_filtered_features, 2 * f, rng);
  fc2_ = std::make_unique<nn::Linear>(2 * f, config.num_classes, rng);
  RegisterModule("conv", &conv_net_);
  RegisterModule("fc1", fc1_.get());
  RegisterModule("fc2", fc2_.get());
  RegisterModule("dropout", &dropout_);
}

ag::Variable DeepSatV2::Forward(const ag::Variable& x,
                                const ag::Variable& features) {
  ag::Variable h = conv_net_.Forward(x);
  h = ag::Reshape(h, {x.shape()[0], flat_size_});
  if (config_.num_filtered_features > 0) {
    GEO_CHECK(features.defined())
        << "DeepSAT-V2 configured with features but none were passed";
    GEO_CHECK_EQ(features.shape()[1], config_.num_filtered_features);
    h = ag::Concat({h, features}, 1);  // feature fusion
  }
  h = nn::FusedEvalEligible(*this)
          ? fc1_->ForwardFusedEval(h, ts::EpilogueAct::kRelu)
          : ag::Relu(fc1_->Forward(h));
  h = dropout_.Forward(h);
  return fc2_->Forward(h);
}

}  // namespace geotorch::models
