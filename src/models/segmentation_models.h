#ifndef GEOTORCH_MODELS_SEGMENTATION_MODELS_H_
#define GEOTORCH_MODELS_SEGMENTATION_MODELS_H_

#include <array>
#include <memory>
#include <vector>

#include "nn/layers.h"

namespace geotorch::models {

struct SegModelConfig {
  int64_t in_channels = 4;
  int64_t num_classes = 2;
  int64_t base_filters = 16;
  uint64_t seed = 0;
};

/// Two 3x3 conv + ReLU layers — the building block shared by the
/// segmentation models.
class DoubleConv : public nn::UnaryModule {
 public:
  DoubleConv(int64_t in, int64_t out, Rng& rng);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
};

/// Fully Convolutional Network (Shelhamer et al.): an encoder with two
/// downsamplings, a 1x1 classifier at 1/4 resolution, and a skip-fused
/// upsampling path (FCN-8s style collapsed to two scales).
class Fcn : public nn::UnaryModule {
 public:
  explicit Fcn(const SegModelConfig& config);
  /// x: (B, C, H, W) -> logits (B, num_classes, H, W).
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  SegModelConfig config_;
  DoubleConv enc1_;
  DoubleConv enc2_;
  DoubleConv enc3_;
  nn::Conv2d score3_;  // 1x1 at 1/4 res
  nn::Conv2d score2_;  // 1x1 skip at 1/2 res
  nn::Conv2d score1_;  // 1x1 skip at full res
};

/// U-Net (Ronneberger et al.): 2-level encoder/decoder with skip
/// concatenation.
class UNet : public nn::UnaryModule {
 public:
  explicit UNet(const SegModelConfig& config);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  SegModelConfig config_;
  DoubleConv enc1_;
  DoubleConv enc2_;
  DoubleConv bottleneck_;
  nn::ConvTranspose2d up2_;
  DoubleConv dec2_;
  nn::ConvTranspose2d up1_;
  DoubleConv dec1_;
  nn::Conv2d head_;
};

/// UNet++ (Zhou et al.): the nested-skip U-Net. Depth-2 realization:
/// nodes X(0,0), X(1,0), X(2,0) on the encoder, intermediate X(0,1),
/// X(1,1), and the dense node X(0,2) that sees X(0,0), X(0,1), and the
/// upsampled X(1,1).
class UNetPlusPlus : public nn::UnaryModule {
 public:
  explicit UNetPlusPlus(const SegModelConfig& config);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  SegModelConfig config_;
  DoubleConv x00_;
  DoubleConv x10_;
  DoubleConv x20_;
  nn::ConvTranspose2d up10_;
  DoubleConv x01_;
  nn::ConvTranspose2d up20_;
  DoubleConv x11_;
  nn::ConvTranspose2d up11_;
  DoubleConv x02_;
  nn::Conv2d head_;
};

}  // namespace geotorch::models

#endif  // GEOTORCH_MODELS_SEGMENTATION_MODELS_H_
