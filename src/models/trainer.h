#ifndef GEOTORCH_MODELS_TRAINER_H_
#define GEOTORCH_MODELS_TRAINER_H_

#include <string>

#include "core/status.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "models/grid_models.h"
#include "models/raster_models.h"
#include "optim/optimizer.h"

namespace geotorch::models {

/// Training protocol shared by every experiment, following Section V-C:
/// Adam, MSE (regression) or cross-entropy (classification), early
/// stopping on the validation loss, incremental (per-batch) updates.
struct TrainConfig {
  int max_epochs = 20;
  int patience = 3;
  /// Validation-loss improvement below this does not reset patience.
  float min_delta = 0.0f;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  float grad_clip = 5.0f;  ///< 0 disables clipping
  uint64_t seed = 0;
  bool verbose = false;
  /// false = incremental training (weights updated after every batch);
  /// true = cumulative training (gradients accumulate across the epoch
  /// and weights update once at its end) — both modes of Section
  /// III-A2. The paper's experiments use incremental.
  bool cumulative = false;

  // --- Checkpointing (DESIGN.md §9) ----------------------------------
  /// Every `checkpoint_every` completed epochs the trainer writes
  /// model parameters, optimizer state, and early-stopping state to
  /// `checkpoint_path` (0 disables).
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// When non-empty, restores this checkpoint before the first epoch
  /// and skips the completed epochs, replaying the shuffle stream so
  /// the continued run is bitwise identical to an uninterrupted one
  /// (asserted by determinism_test).
  std::string resume_from;
};

/// Outcome of a spatiotemporal regression run.
struct RegressionResult {
  float mae = 0.0f;
  float rmse = 0.0f;
  int epochs_run = 0;
  double seconds_per_epoch = 0.0;
};

/// Trains a grid model and evaluates MAE/RMSE on the test set.
RegressionResult TrainGridModel(GridModel& model, const data::Dataset& train,
                                const data::Dataset& val,
                                const data::Dataset& test,
                                const TrainConfig& config);

/// Outcome of a classification / segmentation run.
struct ClassificationResult {
  float accuracy = 0.0f;
  int epochs_run = 0;
  double seconds_per_epoch = 0.0;
};

/// Trains a raster classifier (labels in batch.y; handcrafted features,
/// if any, in batch.extras[0]) and reports test accuracy.
ClassificationResult TrainClassifier(RasterClassifier& model,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     const data::Dataset& test,
                                     const TrainConfig& config);

/// Trains a segmentation model (masks in batch.y) and reports per-pixel
/// test accuracy.
ClassificationResult TrainSegmenter(nn::UnaryModule& model,
                                    const data::Dataset& train,
                                    const data::Dataset& val,
                                    const data::Dataset& test,
                                    const TrainConfig& config);

/// Writes a full training checkpoint: model parameters ("model."
/// prefix), optimizer state ("optim."), early-stopping state, the
/// stream-shaping TrainConfig fields, and the number of completed
/// epochs. The trainers call this via `checkpoint_every`; it is public
/// so harnesses can snapshot at arbitrary points.
Status SaveTrainCheckpoint(const std::string& path, const nn::Module& model,
                           optim::Optimizer& opt,
                           const optim::EarlyStopping& stopper,
                           const TrainConfig& config, int epochs_completed);

/// Restores a SaveTrainCheckpoint file into an already-constructed
/// model / optimizer / stopper, verifying that the config fields that
/// shape the data stream (batch_size, seed, cumulative) match — a
/// mismatch would resume onto a silently different batch sequence.
/// Returns the number of completed epochs to skip.
Result<int> LoadTrainCheckpoint(const std::string& path, nn::Module& model,
                                optim::Optimizer& opt,
                                optim::EarlyStopping& stopper,
                                const TrainConfig& config);

/// Times one training epoch (forward+backward+step over the whole
/// loader) without early stopping — the Table VII / Fig. 9 measurement.
double TimeOneEpochGrid(GridModel& model, const data::Dataset& train,
                        const TrainConfig& config);
double TimeOneEpochClassifier(RasterClassifier& model,
                              const data::Dataset& train,
                              const TrainConfig& config);
double TimeOneEpochSegmenter(nn::UnaryModule& model,
                             const data::Dataset& train,
                             const TrainConfig& config);

}  // namespace geotorch::models

#endif  // GEOTORCH_MODELS_TRAINER_H_
