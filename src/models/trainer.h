#ifndef GEOTORCH_MODELS_TRAINER_H_
#define GEOTORCH_MODELS_TRAINER_H_

#include "data/dataloader.h"
#include "data/dataset.h"
#include "models/grid_models.h"
#include "models/raster_models.h"

namespace geotorch::models {

/// Training protocol shared by every experiment, following Section V-C:
/// Adam, MSE (regression) or cross-entropy (classification), early
/// stopping on the validation loss, incremental (per-batch) updates.
struct TrainConfig {
  int max_epochs = 20;
  int patience = 3;
  /// Validation-loss improvement below this does not reset patience.
  float min_delta = 0.0f;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  float grad_clip = 5.0f;  ///< 0 disables clipping
  uint64_t seed = 0;
  bool verbose = false;
  /// false = incremental training (weights updated after every batch);
  /// true = cumulative training (gradients accumulate across the epoch
  /// and weights update once at its end) — both modes of Section
  /// III-A2. The paper's experiments use incremental.
  bool cumulative = false;
};

/// Outcome of a spatiotemporal regression run.
struct RegressionResult {
  float mae = 0.0f;
  float rmse = 0.0f;
  int epochs_run = 0;
  double seconds_per_epoch = 0.0;
};

/// Trains a grid model and evaluates MAE/RMSE on the test set.
RegressionResult TrainGridModel(GridModel& model, const data::Dataset& train,
                                const data::Dataset& val,
                                const data::Dataset& test,
                                const TrainConfig& config);

/// Outcome of a classification / segmentation run.
struct ClassificationResult {
  float accuracy = 0.0f;
  int epochs_run = 0;
  double seconds_per_epoch = 0.0;
};

/// Trains a raster classifier (labels in batch.y; handcrafted features,
/// if any, in batch.extras[0]) and reports test accuracy.
ClassificationResult TrainClassifier(RasterClassifier& model,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     const data::Dataset& test,
                                     const TrainConfig& config);

/// Trains a segmentation model (masks in batch.y) and reports per-pixel
/// test accuracy.
ClassificationResult TrainSegmenter(nn::UnaryModule& model,
                                    const data::Dataset& train,
                                    const data::Dataset& val,
                                    const data::Dataset& test,
                                    const TrainConfig& config);

/// Times one training epoch (forward+backward+step over the whole
/// loader) without early stopping — the Table VII / Fig. 9 measurement.
double TimeOneEpochGrid(GridModel& model, const data::Dataset& train,
                        const TrainConfig& config);
double TimeOneEpochClassifier(RasterClassifier& model,
                              const data::Dataset& train,
                              const TrainConfig& config);
double TimeOneEpochSegmenter(nn::UnaryModule& model,
                             const data::Dataset& train,
                             const TrainConfig& config);

}  // namespace geotorch::models

#endif  // GEOTORCH_MODELS_TRAINER_H_
