#ifndef GEOTORCH_MODELS_RASTER_MODELS_H_
#define GEOTORCH_MODELS_RASTER_MODELS_H_

#include <memory>
#include <vector>

#include "nn/layers.h"

namespace geotorch::models {

/// Common interface of the raster classification models: images (and
/// optionally a handcrafted feature vector) in, class logits out.
class RasterClassifier : public nn::Module {
 public:
  /// x: (B, C, H, W); features: (B, F) or empty for models that ignore
  /// them. Returns (B, num_classes) logits.
  virtual autograd::Variable Forward(const autograd::Variable& x,
                                     const autograd::Variable& features) = 0;
};

struct RasterModelConfig {
  int64_t in_channels = 13;
  int64_t in_height = 64;
  int64_t in_width = 64;
  int64_t num_classes = 10;
  /// Length of the handcrafted feature vector fused by DeepSAT-V2
  /// (`num_filtered_features` in the paper's Listing 6).
  int64_t num_filtered_features = 0;
  int64_t base_filters = 32;
  uint64_t seed = 0;
};

/// SatCNN (Zhong et al., 2017): an "agile" deep CNN — three conv-pool
/// stages and two fully connected layers. The deeper, slower
/// classifier of Table VII.
class SatCnn : public RasterClassifier {
 public:
  explicit SatCnn(const RasterModelConfig& config);
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& features) override;

 private:
  RasterModelConfig config_;
  nn::Sequential features_net_;
  int64_t flat_size_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  nn::Dropout dropout_;
};

/// DeepSAT (Basu et al., 2015): the original feature-driven
/// classifier — no convolutions; a deep fully connected network over
/// the handcrafted spectral/GLCM feature vector concatenated with
/// per-band mean/stddev statistics (the DBN of the original replaced
/// by an MLP of the same depth).
class DeepSat : public RasterClassifier {
 public:
  explicit DeepSat(const RasterModelConfig& config);
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& features) override;

 private:
  RasterModelConfig config_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  std::unique_ptr<nn::Linear> fc3_;
  nn::Dropout dropout_;
};

/// DeepSAT-V2 (Liu et al., 2019): a compact CNN whose flattened
/// features are concatenated with the handcrafted spectral/GLCM
/// feature vector before the classifier head — the feature-fusion idea
/// the paper highlights (Section II-C).
class DeepSatV2 : public RasterClassifier {
 public:
  explicit DeepSatV2(const RasterModelConfig& config);
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& features) override;

 private:
  RasterModelConfig config_;
  nn::Sequential conv_net_;
  int64_t flat_size_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  nn::Dropout dropout_;
};

}  // namespace geotorch::models

#endif  // GEOTORCH_MODELS_RASTER_MODELS_H_
