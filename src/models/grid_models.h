#ifndef GEOTORCH_MODELS_GRID_MODELS_H_
#define GEOTORCH_MODELS_GRID_MODELS_H_

#include <memory>
#include <vector>

#include "data/dataloader.h"
#include "nn/layers.h"

namespace geotorch::models {

/// Common interface of the grid-based spatiotemporal predictors
/// (Periodical CNN, ConvLSTM, ST-ResNet, DeepSTN+): a batch goes in
/// (whatever representation the model needs), a prediction with the
/// shape of batch.y comes out. This is what lets the Table IV/V/VII
/// harnesses train every model with one loop.
class GridModel : public nn::Module {
 public:
  virtual autograd::Variable Forward(const data::Batch& batch) = 0;
};

/// Shape parameters shared by the grid models.
struct GridModelConfig {
  int64_t channels = 2;      ///< data channels C
  int64_t height = 16;
  int64_t width = 16;
  int64_t len_closeness = 3; ///< periodical representation lengths
  int64_t len_period = 2;
  int64_t len_trend = 1;
  int64_t hidden = 32;       ///< conv width
  uint64_t seed = 0;
};

/// Periodical CNN: the paper's simplest periodical baseline — the
/// closeness/period/trend stacks are concatenated along channels and
/// pushed through a plain CNN.
class PeriodicalCnn : public GridModel {
 public:
  explicit PeriodicalCnn(const GridModelConfig& config);
  autograd::Variable Forward(const data::Batch& batch) override;

 private:
  GridModelConfig config_;
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
  nn::Conv2d conv3_;
};

/// ConvLSTM (Shi et al., 2015): sequential representation. The encoder
/// consumes the history frames; the decoder rolls the cell forward
/// feeding back its own output for prediction_length steps.
class ConvLstm : public GridModel {
 public:
  ConvLstm(const GridModelConfig& config, int64_t prediction_length = 1,
           int64_t kernel = 3);
  autograd::Variable Forward(const data::Batch& batch) override;

 private:
  GridModelConfig config_;
  int64_t prediction_length_;
  nn::ConvLstmCell cell_;
  nn::Conv2d head_;  // 1x1 hidden -> C
};

/// One ST-ResNet residual unit: ReLU-conv twice with identity skip.
/// (The original optionally inserts BatchNorm; under this repo's short
/// training budgets the train/eval statistics gap hurts, so the unit
/// follows the no-BN variant of the reference implementation.)
class ResUnit : public nn::UnaryModule {
 public:
  ResUnit(int64_t channels, Rng& rng);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
};

/// ST-ResNet (Zhang et al., AAAI'17): three residual CNN branches for
/// closeness / period / trend, fused with learned per-cell parametric
/// matrices (the paper's X = Wc.Xc + Wp.Xp + Wq.Xq fusion).
class StResNet : public GridModel {
 public:
  explicit StResNet(const GridModelConfig& config, int num_res_units = 2,
                    int64_t external_dim = 0);
  autograd::Variable Forward(const data::Batch& batch) override;

 private:
  struct Branch {
    std::unique_ptr<nn::Conv2d> in_conv;
    std::vector<std::unique_ptr<ResUnit>> res_units;
    std::unique_ptr<nn::Conv2d> out_conv;
  };
  autograd::Variable RunBranch(Branch& branch, const autograd::Variable& x);

  GridModelConfig config_;
  Branch closeness_;
  Branch period_;
  Branch trend_;
  autograd::Variable w_closeness_;  // (1, C, H, W) fusion matrices
  autograd::Variable w_period_;
  autograd::Variable w_trend_;
  int64_t external_dim_;
  std::unique_ptr<nn::Linear> external_fc_;
};

/// DeepSTN+ (Lin et al., AAAI'19): early fusion of the three temporal
/// stacks, ConvPlus blocks (local convolution plus a global
/// squeeze-excite-style context path), multi-scale aggregation, and a
/// residual output head — the strongest model in the paper's tables.
class DeepStnPlus : public GridModel {
 public:
  explicit DeepStnPlus(const GridModelConfig& config, int num_blocks = 3);
  autograd::Variable Forward(const data::Batch& batch) override;

 private:
  /// ConvPlus: conv(x) + broadcast(fc(globalavgpool(x))).
  struct ConvPlusBlock {
    std::unique_ptr<nn::Conv2d> conv;
    std::unique_ptr<nn::Linear> context_fc;
  };
  autograd::Variable RunConvPlus(ConvPlusBlock& block,
                                 const autograd::Variable& x);

  GridModelConfig config_;
  std::unique_ptr<nn::Conv2d> fuse_conv_;
  std::vector<ConvPlusBlock> blocks_;
  std::unique_ptr<nn::Conv2d> out_conv_;
  autograd::Variable residual_scale_;  // (1, C, H, W)
};

/// CNN+LSTM hybrid in the style of STDN / DMVST-Net (Section II-B of
/// the paper: models that "employ LSTM to connect with a CNN at each
/// timestep"). A shared CNN encodes each history frame into a feature
/// vector; an LSTM consumes the sequence; a linear head decodes the
/// final hidden state back into a grid. Uses the sequential
/// representation with prediction_length 1.
class CnnLstm : public GridModel {
 public:
  explicit CnnLstm(const GridModelConfig& config);
  autograd::Variable Forward(const data::Batch& batch) override;

 private:
  GridModelConfig config_;
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
  int64_t feature_dim_;
  nn::LstmCell lstm_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace geotorch::models

#endif  // GEOTORCH_MODELS_GRID_MODELS_H_
