#include "models/trainer.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/check.h"
#include "core/stopwatch.h"
#include "data/metrics.h"
#include "io/checkpoint.h"
#include "obs/obs.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace geotorch::models {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

namespace {

// Labels arrive as (B, 1) from the stacked scalar samples; flatten.
ts::Tensor FlattenLabels(const ts::Tensor& y) {
  return y.Reshape({y.numel()});
}

ag::Variable ClassifierLogits(RasterClassifier& model,
                              const data::Batch& batch) {
  ag::Variable features;
  if (!batch.extras.empty()) features = ag::Variable(batch.extras[0]);
  return model.Forward(ag::Variable(batch.x), features);
}

// Runs one epoch over `loader`, returning the mean batch loss.
// Incremental mode steps per batch; cumulative mode accumulates
// gradients and steps once at epoch end (Section III-A2).
template <typename LossFn>
float RunEpoch(nn::Module& model, optim::Optimizer& opt,
               data::DataLoader& loader, const TrainConfig& config,
               LossFn loss_fn) {
  model.SetTraining(true);
  loader.Reset();
  GEO_OBS_SPAN(epoch_span, "trainer.epoch");
  data::Batch batch;
  double total = 0.0;
  int64_t batches = 0;
  // Pulls the next batch under a "trainer.load" span so the trace tree
  // separates input-pipeline time from compute time.
  auto next_batch = [&loader, &batch] {
    GEO_OBS_SPAN(load_span, "trainer.load");
    return loader.Next(&batch);
  };
  if (!config.cumulative) {
    while (next_batch()) {
      opt.ZeroGrad();
      ag::Variable loss = [&] {
        GEO_OBS_SPAN(fwd_span, "trainer.forward");
        return loss_fn(batch);
      }();
      {
        GEO_OBS_SPAN(bwd_span, "trainer.backward");
        loss.Backward();
      }
      {
        GEO_OBS_SPAN(step_span, "trainer.step");
        GEO_OBS_COUNT("trainer.steps", 1);
        if (config.grad_clip > 0.0f) opt.ClipGradNorm(config.grad_clip);
        opt.Step();
      }
      total += loss.value().flat(0);
      ++batches;
    }
  } else {
    opt.ZeroGrad();
    while (next_batch()) {
      ag::Variable loss = [&] {
        GEO_OBS_SPAN(fwd_span, "trainer.forward");
        return loss_fn(batch);
      }();
      {
        GEO_OBS_SPAN(bwd_span, "trainer.backward");
        loss.Backward();
      }
      total += loss.value().flat(0);
      ++batches;
    }
    if (batches > 0) {
      GEO_OBS_SPAN(step_span, "trainer.step");
      GEO_OBS_COUNT("trainer.steps", 1);
      if (config.grad_clip > 0.0f) {
        opt.ClipGradNorm(config.grad_clip * static_cast<float>(batches));
      }
      opt.Step();
    }
  }
  return batches > 0 ? static_cast<float>(total / batches) : 0.0f;
}

// Mean loss over a dataset without gradient tracking.
template <typename LossFn>
float Evaluate(nn::Module& model, const data::Dataset& dataset,
               int64_t batch_size, LossFn loss_fn) {
  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/false);
  data::Batch batch;
  double total = 0.0;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    total += loss_fn(batch).value().flat(0);
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total / batches) : 0.0f;
}

// Restores config.resume_from (when set) into the model/optimizer/
// stopper and returns the number of completed epochs to skip. A bad
// checkpoint aborts: training onward from half-restored state would
// silently produce a different model.
int ResumeIfConfigured(nn::Module& model, optim::Optimizer& opt,
                       optim::EarlyStopping& stopper,
                       const TrainConfig& config) {
  if (config.resume_from.empty()) return 0;
  auto resumed =
      LoadTrainCheckpoint(config.resume_from, model, opt, stopper, config);
  GEO_CHECK(resumed.ok()) << "resume failed: "
                          << resumed.status().ToString();
  return *resumed;
}

// Writes config.checkpoint_path after every checkpoint_every-th epoch.
// Called after the early-stopping update so the saved stopper state is
// exactly what an uninterrupted run would carry into the next epoch.
void MaybeCheckpoint(const nn::Module& model, optim::Optimizer& opt,
                     const optim::EarlyStopping& stopper,
                     const TrainConfig& config, int epochs_completed) {
  if (config.checkpoint_every <= 0 || config.checkpoint_path.empty()) return;
  if (epochs_completed % config.checkpoint_every != 0) return;
  GEO_OBS_SPAN(ckpt_span, "trainer.checkpoint");
  Status s = SaveTrainCheckpoint(config.checkpoint_path, model, opt, stopper,
                                 config, epochs_completed);
  if (!s.ok()) {
    std::fprintf(stderr, "WARNING: checkpoint write failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace

Status SaveTrainCheckpoint(const std::string& path, const nn::Module& model,
                           optim::Optimizer& opt,
                           const optim::EarlyStopping& stopper,
                           const TrainConfig& config, int epochs_completed) {
  io::Checkpoint ckpt;
  for (auto& [name, p] : model.NamedParameters()) {
    ckpt.tensors.emplace_back("model." + name, p.value());
  }
  for (auto& [name, t] : opt.StateTensors()) {
    ckpt.tensors.emplace_back("optim." + name, t);
  }
  ckpt.ints.emplace_back("epoch", epochs_completed);
  ckpt.ints.emplace_back("optim.step_count", opt.StepCount());
  ckpt.ints.emplace_back("stopper.bad_epochs", stopper.bad_epochs());
  ckpt.ints.emplace_back("config.batch_size", config.batch_size);
  ckpt.ints.emplace_back("config.seed", static_cast<int64_t>(config.seed));
  ckpt.ints.emplace_back("config.cumulative", config.cumulative ? 1 : 0);
  ckpt.floats.emplace_back("stopper.best", stopper.best());
  ckpt.floats.emplace_back("config.lr", config.lr);
  ckpt.floats.emplace_back("config.grad_clip", config.grad_clip);
  return io::WriteCheckpoint(path, ckpt);
}

Result<int> LoadTrainCheckpoint(const std::string& path, nn::Module& model,
                                optim::Optimizer& opt,
                                optim::EarlyStopping& stopper,
                                const TrainConfig& config) {
  GEO_ASSIGN_OR_RETURN(io::Checkpoint ckpt, io::ReadCheckpoint(path));

  const int64_t* epoch = ckpt.FindInt("epoch");
  const int64_t* step_count = ckpt.FindInt("optim.step_count");
  const int64_t* bad_epochs = ckpt.FindInt("stopper.bad_epochs");
  const double* best = ckpt.FindFloat("stopper.best");
  if (epoch == nullptr || step_count == nullptr || bad_epochs == nullptr ||
      best == nullptr) {
    return Status::InvalidArgument(
        "not a trainer checkpoint (missing epoch/optimizer/stopper "
        "records): " + path);
  }
  // The fields that shape the batch stream must match, or the resumed
  // run silently diverges from the one that wrote the checkpoint.
  const int64_t* batch_size = ckpt.FindInt("config.batch_size");
  const int64_t* seed = ckpt.FindInt("config.seed");
  const int64_t* cumulative = ckpt.FindInt("config.cumulative");
  if (batch_size != nullptr && *batch_size != config.batch_size) {
    return Status::InvalidArgument("checkpoint batch_size mismatch: " + path);
  }
  if (seed != nullptr &&
      static_cast<uint64_t>(*seed) != config.seed) {
    return Status::InvalidArgument("checkpoint seed mismatch: " + path);
  }
  if (cumulative != nullptr && (*cumulative != 0) != config.cumulative) {
    return Status::InvalidArgument(
        "checkpoint cumulative-mode mismatch: " + path);
  }

  GEO_RETURN_NOT_OK(io::ApplyStateDict(model, ckpt, {/*strict=*/true},
                                       /*prefix=*/"model."));
  for (auto& [name, t] : opt.StateTensors()) {
    const tensor::Tensor* saved = ckpt.FindTensor("optim." + name);
    if (saved == nullptr) {
      return Status::InvalidArgument(
          "checkpoint missing optimizer state '" + name + "': " + path);
    }
    if (!tensor::SameShape(saved->shape(), t.shape())) {
      return Status::InvalidArgument(
          "optimizer state shape mismatch for '" + name + "': " + path);
    }
    std::memcpy(t.data(), saved->data(),
                static_cast<size_t>(t.numel()) * sizeof(float));
  }
  opt.SetStepCount(*step_count);
  stopper.Restore(static_cast<float>(*best), static_cast<int>(*bad_epochs));
  return static_cast<int>(*epoch);
}

RegressionResult TrainGridModel(GridModel& model, const data::Dataset& train,
                                const data::Dataset& val,
                                const data::Dataset& test,
                                const TrainConfig& config) {
  optim::Adam opt(model.Parameters(), config.lr);
  optim::EarlyStopping stopper(config.patience, config.min_delta);
  data::DataLoader train_loader(&train, config.batch_size, /*shuffle=*/true,
                                config.seed);
  auto loss_fn = [&model](const data::Batch& batch) {
    return ag::MseLoss(model.Forward(batch), batch.y);
  };

  const int start_epoch = ResumeIfConfigured(model, opt, stopper, config);
  RegressionResult result;
  // Epochs restored from the checkpoint count toward epochs_run so a
  // resumed run reports the same training length as an uninterrupted
  // one; per-epoch timing covers only the epochs executed here.
  result.epochs_run = start_epoch;
  Stopwatch total_timer;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    if (epoch < start_epoch) {
      train_loader.Reset();  // replay the checkpointed epochs' shuffles
      continue;
    }
    const float train_loss =
        RunEpoch(model, opt, train_loader, config, loss_fn);
    const float val_loss =
        Evaluate(model, val, config.batch_size, loss_fn);
    ++result.epochs_run;
    if (config.verbose) {
      std::printf("  epoch %2d train_mse=%.5f val_mse=%.5f\n", epoch,
                  train_loss, val_loss);
    }
    const bool stop = stopper.Update(val_loss);
    MaybeCheckpoint(model, opt, stopper, config, epoch + 1);
    if (stop) break;
  }
  result.seconds_per_epoch =
      total_timer.ElapsedSeconds() /
      std::max(1, result.epochs_run - start_epoch);

  // Test metrics.
  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader test_loader(&test, config.batch_size, /*shuffle=*/false);
  data::Batch batch;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  int64_t count = 0;
  while (test_loader.Next(&batch)) {
    ts::Tensor pred = model.Forward(batch).value();
    ts::Tensor diff = ts::Sub(pred, batch.y);
    const float* d = diff.data();
    for (int64_t i = 0; i < diff.numel(); ++i) {
      abs_sum += std::fabs(d[i]);
      sq_sum += static_cast<double>(d[i]) * d[i];
    }
    count += diff.numel();
  }
  result.mae = static_cast<float>(abs_sum / count);
  result.rmse = static_cast<float>(std::sqrt(sq_sum / count));
  return result;
}

ClassificationResult TrainClassifier(RasterClassifier& model,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     const data::Dataset& test,
                                     const TrainConfig& config) {
  optim::Adam opt(model.Parameters(), config.lr);
  optim::EarlyStopping stopper(config.patience, config.min_delta);
  data::DataLoader train_loader(&train, config.batch_size, /*shuffle=*/true,
                                config.seed);
  auto loss_fn = [&model](const data::Batch& batch) {
    return ag::CrossEntropyLoss(ClassifierLogits(model, batch),
                                FlattenLabels(batch.y));
  };

  ClassificationResult result;
  const int start_epoch = ResumeIfConfigured(model, opt, stopper, config);
  result.epochs_run = start_epoch;
  Stopwatch total_timer;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    if (epoch < start_epoch) {
      train_loader.Reset();  // replay the checkpointed epochs' shuffles
      continue;
    }
    const float train_loss =
        RunEpoch(model, opt, train_loader, config, loss_fn);
    const float val_loss =
        Evaluate(model, val, config.batch_size, loss_fn);
    ++result.epochs_run;
    if (config.verbose) {
      std::printf("  epoch %2d train_ce=%.4f val_ce=%.4f\n", epoch,
                  train_loss, val_loss);
    }
    const bool stop = stopper.Update(val_loss);
    MaybeCheckpoint(model, opt, stopper, config, epoch + 1);
    if (stop) break;
  }
  result.seconds_per_epoch =
      total_timer.ElapsedSeconds() /
      std::max(1, result.epochs_run - start_epoch);

  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader test_loader(&test, config.batch_size, /*shuffle=*/false);
  data::Batch batch;
  int64_t correct = 0;
  int64_t total = 0;
  while (test_loader.Next(&batch)) {
    ts::Tensor logits = ClassifierLogits(model, batch).value();
    ts::Tensor pred = ts::Argmax(logits, 1);
    ts::Tensor labels = FlattenLabels(batch.y);
    for (int64_t i = 0; i < pred.numel(); ++i) {
      if (static_cast<int64_t>(pred.flat(i)) ==
          static_cast<int64_t>(labels.flat(i))) {
        ++correct;
      }
    }
    total += pred.numel();
  }
  result.accuracy = static_cast<float>(correct) / static_cast<float>(total);
  return result;
}

ClassificationResult TrainSegmenter(nn::UnaryModule& model,
                                    const data::Dataset& train,
                                    const data::Dataset& val,
                                    const data::Dataset& test,
                                    const TrainConfig& config) {
  optim::Adam opt(model.Parameters(), config.lr);
  optim::EarlyStopping stopper(config.patience, config.min_delta);
  data::DataLoader train_loader(&train, config.batch_size, /*shuffle=*/true,
                                config.seed);
  auto loss_fn = [&model](const data::Batch& batch) {
    return ag::CrossEntropyLoss(model.Forward(ag::Variable(batch.x)),
                                batch.y);
  };

  ClassificationResult result;
  const int start_epoch = ResumeIfConfigured(model, opt, stopper, config);
  result.epochs_run = start_epoch;
  Stopwatch total_timer;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    if (epoch < start_epoch) {
      train_loader.Reset();  // replay the checkpointed epochs' shuffles
      continue;
    }
    const float train_loss =
        RunEpoch(model, opt, train_loader, config, loss_fn);
    const float val_loss =
        Evaluate(model, val, config.batch_size, loss_fn);
    ++result.epochs_run;
    if (config.verbose) {
      std::printf("  epoch %2d train_ce=%.4f val_ce=%.4f\n", epoch,
                  train_loss, val_loss);
    }
    const bool stop = stopper.Update(val_loss);
    MaybeCheckpoint(model, opt, stopper, config, epoch + 1);
    if (stop) break;
  }
  result.seconds_per_epoch =
      total_timer.ElapsedSeconds() /
      std::max(1, result.epochs_run - start_epoch);

  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader test_loader(&test, config.batch_size, /*shuffle=*/false);
  data::Batch batch;
  double acc_sum = 0.0;
  int64_t batches = 0;
  while (test_loader.Next(&batch)) {
    ts::Tensor logits = model.Forward(ag::Variable(batch.x)).value();
    acc_sum += data::PixelAccuracy(logits, batch.y);
    ++batches;
  }
  result.accuracy = static_cast<float>(acc_sum / std::max<int64_t>(1, batches));
  return result;
}

namespace {

template <typename LossFn>
double TimeOneEpoch(nn::Module& model, const data::Dataset& train,
                    const TrainConfig& config, LossFn loss_fn) {
  optim::Adam opt(model.Parameters(), config.lr);
  data::DataLoader loader(&train, config.batch_size, /*shuffle=*/true,
                          config.seed);
  Stopwatch timer;
  RunEpoch(model, opt, loader, config, loss_fn);
  return timer.ElapsedSeconds();
}

}  // namespace

double TimeOneEpochGrid(GridModel& model, const data::Dataset& train,
                        const TrainConfig& config) {
  return TimeOneEpoch(model, train, config, [&model](const data::Batch& b) {
    return ag::MseLoss(model.Forward(b), b.y);
  });
}

double TimeOneEpochClassifier(RasterClassifier& model,
                              const data::Dataset& train,
                              const TrainConfig& config) {
  return TimeOneEpoch(model, train, config, [&model](const data::Batch& b) {
    return ag::CrossEntropyLoss(ClassifierLogits(model, b),
                                FlattenLabels(b.y));
  });
}

double TimeOneEpochSegmenter(nn::UnaryModule& model,
                             const data::Dataset& train,
                             const TrainConfig& config) {
  return TimeOneEpoch(model, train, config, [&model](const data::Batch& b) {
    return ag::CrossEntropyLoss(model.Forward(ag::Variable(b.x)), b.y);
  });
}

}  // namespace geotorch::models
