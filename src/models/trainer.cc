#include "models/trainer.h"

#include <cmath>
#include <cstdio>

#include "core/stopwatch.h"
#include "data/metrics.h"
#include "obs/obs.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"

namespace geotorch::models {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

namespace {

// Labels arrive as (B, 1) from the stacked scalar samples; flatten.
ts::Tensor FlattenLabels(const ts::Tensor& y) {
  return y.Reshape({y.numel()});
}

ag::Variable ClassifierLogits(RasterClassifier& model,
                              const data::Batch& batch) {
  ag::Variable features;
  if (!batch.extras.empty()) features = ag::Variable(batch.extras[0]);
  return model.Forward(ag::Variable(batch.x), features);
}

// Runs one epoch over `loader`, returning the mean batch loss.
// Incremental mode steps per batch; cumulative mode accumulates
// gradients and steps once at epoch end (Section III-A2).
template <typename LossFn>
float RunEpoch(nn::Module& model, optim::Optimizer& opt,
               data::DataLoader& loader, const TrainConfig& config,
               LossFn loss_fn) {
  model.SetTraining(true);
  loader.Reset();
  GEO_OBS_SPAN(epoch_span, "trainer.epoch");
  data::Batch batch;
  double total = 0.0;
  int64_t batches = 0;
  // Pulls the next batch under a "trainer.load" span so the trace tree
  // separates input-pipeline time from compute time.
  auto next_batch = [&loader, &batch] {
    GEO_OBS_SPAN(load_span, "trainer.load");
    return loader.Next(&batch);
  };
  if (!config.cumulative) {
    while (next_batch()) {
      opt.ZeroGrad();
      ag::Variable loss = [&] {
        GEO_OBS_SPAN(fwd_span, "trainer.forward");
        return loss_fn(batch);
      }();
      {
        GEO_OBS_SPAN(bwd_span, "trainer.backward");
        loss.Backward();
      }
      {
        GEO_OBS_SPAN(step_span, "trainer.step");
        GEO_OBS_COUNT("trainer.steps", 1);
        if (config.grad_clip > 0.0f) opt.ClipGradNorm(config.grad_clip);
        opt.Step();
      }
      total += loss.value().flat(0);
      ++batches;
    }
  } else {
    opt.ZeroGrad();
    while (next_batch()) {
      ag::Variable loss = [&] {
        GEO_OBS_SPAN(fwd_span, "trainer.forward");
        return loss_fn(batch);
      }();
      {
        GEO_OBS_SPAN(bwd_span, "trainer.backward");
        loss.Backward();
      }
      total += loss.value().flat(0);
      ++batches;
    }
    if (batches > 0) {
      GEO_OBS_SPAN(step_span, "trainer.step");
      GEO_OBS_COUNT("trainer.steps", 1);
      if (config.grad_clip > 0.0f) {
        opt.ClipGradNorm(config.grad_clip * static_cast<float>(batches));
      }
      opt.Step();
    }
  }
  return batches > 0 ? static_cast<float>(total / batches) : 0.0f;
}

// Mean loss over a dataset without gradient tracking.
template <typename LossFn>
float Evaluate(nn::Module& model, const data::Dataset& dataset,
               int64_t batch_size, LossFn loss_fn) {
  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader loader(&dataset, batch_size, /*shuffle=*/false);
  data::Batch batch;
  double total = 0.0;
  int64_t batches = 0;
  while (loader.Next(&batch)) {
    total += loss_fn(batch).value().flat(0);
    ++batches;
  }
  return batches > 0 ? static_cast<float>(total / batches) : 0.0f;
}

}  // namespace

RegressionResult TrainGridModel(GridModel& model, const data::Dataset& train,
                                const data::Dataset& val,
                                const data::Dataset& test,
                                const TrainConfig& config) {
  optim::Adam opt(model.Parameters(), config.lr);
  optim::EarlyStopping stopper(config.patience, config.min_delta);
  data::DataLoader train_loader(&train, config.batch_size, /*shuffle=*/true,
                                config.seed);
  auto loss_fn = [&model](const data::Batch& batch) {
    return ag::MseLoss(model.Forward(batch), batch.y);
  };

  RegressionResult result;
  Stopwatch total_timer;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    const float train_loss =
        RunEpoch(model, opt, train_loader, config, loss_fn);
    const float val_loss =
        Evaluate(model, val, config.batch_size, loss_fn);
    ++result.epochs_run;
    if (config.verbose) {
      std::printf("  epoch %2d train_mse=%.5f val_mse=%.5f\n", epoch,
                  train_loss, val_loss);
    }
    if (stopper.Update(val_loss)) break;
  }
  result.seconds_per_epoch =
      total_timer.ElapsedSeconds() / std::max(1, result.epochs_run);

  // Test metrics.
  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader test_loader(&test, config.batch_size, /*shuffle=*/false);
  data::Batch batch;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  int64_t count = 0;
  while (test_loader.Next(&batch)) {
    ts::Tensor pred = model.Forward(batch).value();
    ts::Tensor diff = ts::Sub(pred, batch.y);
    const float* d = diff.data();
    for (int64_t i = 0; i < diff.numel(); ++i) {
      abs_sum += std::fabs(d[i]);
      sq_sum += static_cast<double>(d[i]) * d[i];
    }
    count += diff.numel();
  }
  result.mae = static_cast<float>(abs_sum / count);
  result.rmse = static_cast<float>(std::sqrt(sq_sum / count));
  return result;
}

ClassificationResult TrainClassifier(RasterClassifier& model,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     const data::Dataset& test,
                                     const TrainConfig& config) {
  optim::Adam opt(model.Parameters(), config.lr);
  optim::EarlyStopping stopper(config.patience, config.min_delta);
  data::DataLoader train_loader(&train, config.batch_size, /*shuffle=*/true,
                                config.seed);
  auto loss_fn = [&model](const data::Batch& batch) {
    return ag::CrossEntropyLoss(ClassifierLogits(model, batch),
                                FlattenLabels(batch.y));
  };

  ClassificationResult result;
  Stopwatch total_timer;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    const float train_loss =
        RunEpoch(model, opt, train_loader, config, loss_fn);
    const float val_loss =
        Evaluate(model, val, config.batch_size, loss_fn);
    ++result.epochs_run;
    if (config.verbose) {
      std::printf("  epoch %2d train_ce=%.4f val_ce=%.4f\n", epoch,
                  train_loss, val_loss);
    }
    if (stopper.Update(val_loss)) break;
  }
  result.seconds_per_epoch =
      total_timer.ElapsedSeconds() / std::max(1, result.epochs_run);

  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader test_loader(&test, config.batch_size, /*shuffle=*/false);
  data::Batch batch;
  int64_t correct = 0;
  int64_t total = 0;
  while (test_loader.Next(&batch)) {
    ts::Tensor logits = ClassifierLogits(model, batch).value();
    ts::Tensor pred = ts::Argmax(logits, 1);
    ts::Tensor labels = FlattenLabels(batch.y);
    for (int64_t i = 0; i < pred.numel(); ++i) {
      if (static_cast<int64_t>(pred.flat(i)) ==
          static_cast<int64_t>(labels.flat(i))) {
        ++correct;
      }
    }
    total += pred.numel();
  }
  result.accuracy = static_cast<float>(correct) / static_cast<float>(total);
  return result;
}

ClassificationResult TrainSegmenter(nn::UnaryModule& model,
                                    const data::Dataset& train,
                                    const data::Dataset& val,
                                    const data::Dataset& test,
                                    const TrainConfig& config) {
  optim::Adam opt(model.Parameters(), config.lr);
  optim::EarlyStopping stopper(config.patience, config.min_delta);
  data::DataLoader train_loader(&train, config.batch_size, /*shuffle=*/true,
                                config.seed);
  auto loss_fn = [&model](const data::Batch& batch) {
    return ag::CrossEntropyLoss(model.Forward(ag::Variable(batch.x)),
                                batch.y);
  };

  ClassificationResult result;
  Stopwatch total_timer;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    const float train_loss =
        RunEpoch(model, opt, train_loader, config, loss_fn);
    const float val_loss =
        Evaluate(model, val, config.batch_size, loss_fn);
    ++result.epochs_run;
    if (config.verbose) {
      std::printf("  epoch %2d train_ce=%.4f val_ce=%.4f\n", epoch,
                  train_loss, val_loss);
    }
    if (stopper.Update(val_loss)) break;
  }
  result.seconds_per_epoch =
      total_timer.ElapsedSeconds() / std::max(1, result.epochs_run);

  ag::NoGradGuard guard;
  model.SetTraining(false);
  data::DataLoader test_loader(&test, config.batch_size, /*shuffle=*/false);
  data::Batch batch;
  double acc_sum = 0.0;
  int64_t batches = 0;
  while (test_loader.Next(&batch)) {
    ts::Tensor logits = model.Forward(ag::Variable(batch.x)).value();
    acc_sum += data::PixelAccuracy(logits, batch.y);
    ++batches;
  }
  result.accuracy = static_cast<float>(acc_sum / std::max<int64_t>(1, batches));
  return result;
}

namespace {

template <typename LossFn>
double TimeOneEpoch(nn::Module& model, const data::Dataset& train,
                    const TrainConfig& config, LossFn loss_fn) {
  optim::Adam opt(model.Parameters(), config.lr);
  data::DataLoader loader(&train, config.batch_size, /*shuffle=*/true,
                          config.seed);
  Stopwatch timer;
  RunEpoch(model, opt, loader, config, loss_fn);
  return timer.ElapsedSeconds();
}

}  // namespace

double TimeOneEpochGrid(GridModel& model, const data::Dataset& train,
                        const TrainConfig& config) {
  return TimeOneEpoch(model, train, config, [&model](const data::Batch& b) {
    return ag::MseLoss(model.Forward(b), b.y);
  });
}

double TimeOneEpochClassifier(RasterClassifier& model,
                              const data::Dataset& train,
                              const TrainConfig& config) {
  return TimeOneEpoch(model, train, config, [&model](const data::Batch& b) {
    return ag::CrossEntropyLoss(ClassifierLogits(model, b),
                                FlattenLabels(b.y));
  });
}

double TimeOneEpochSegmenter(nn::UnaryModule& model,
                             const data::Dataset& train,
                             const TrainConfig& config) {
  return TimeOneEpoch(model, train, config, [&model](const data::Batch& b) {
    return ag::CrossEntropyLoss(model.Forward(ag::Variable(b.x)), b.y);
  });
}

}  // namespace geotorch::models
