#include "models/segmentation_models.h"

namespace geotorch::models {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

namespace {
Rng MakeRng(uint64_t seed) { return Rng(seed); }
}  // namespace

DoubleConv::DoubleConv(int64_t in, int64_t out, Rng& rng)
    : conv1_(in, out, 3, rng, 1, 1), conv2_(out, out, 3, rng, 1, 1) {
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
}

ag::Variable DoubleConv::Forward(const ag::Variable& x) {
  if (nn::FusedEvalEligible(*this)) {
    return conv2_.ForwardFusedEval(
        conv1_.ForwardFusedEval(x, nullptr, ts::EpilogueAct::kRelu), nullptr,
        ts::EpilogueAct::kRelu);
  }
  return ag::Relu(conv2_.Forward(ag::Relu(conv1_.Forward(x))));
}

// --- Fcn --------------------------------------------------------------------

Fcn::Fcn(const SegModelConfig& config)
    : config_(config),
      enc1_(config.in_channels, config.base_filters,
            *std::make_unique<Rng>(config.seed)),
      enc2_(config.base_filters, 2 * config.base_filters,
            *std::make_unique<Rng>(config.seed + 1)),
      enc3_(2 * config.base_filters, 4 * config.base_filters,
            *std::make_unique<Rng>(config.seed + 2)),
      score3_(4 * config.base_filters, config.num_classes, 1,
              *std::make_unique<Rng>(config.seed + 3)),
      score2_(2 * config.base_filters, config.num_classes, 1,
              *std::make_unique<Rng>(config.seed + 4)),
      score1_(config.base_filters, config.num_classes, 1,
              *std::make_unique<Rng>(config.seed + 5)) {
  RegisterModule("enc1", &enc1_);
  RegisterModule("enc2", &enc2_);
  RegisterModule("enc3", &enc3_);
  RegisterModule("score3", &score3_);
  RegisterModule("score2", &score2_);
  RegisterModule("score1", &score1_);
}

ag::Variable Fcn::Forward(const ag::Variable& x) {
  ag::Variable f1 = enc1_.Forward(x);                      // full res
  ag::Variable f2 = enc2_.Forward(ag::MaxPool2d(f1, 2));   // 1/2
  ag::Variable f3 = enc3_.Forward(ag::MaxPool2d(f2, 2));   // 1/4
  // Score at the coarsest scale, then fuse skips while upsampling.
  ag::Variable s = score3_.Forward(f3);
  s = ag::Add(ag::UpsampleNearest2x(s), score2_.Forward(f2));
  s = ag::Add(ag::UpsampleNearest2x(s), score1_.Forward(f1));
  return s;
}

// --- UNet -------------------------------------------------------------------

UNet::UNet(const SegModelConfig& config)
    : config_(config),
      enc1_(config.in_channels, config.base_filters,
            *std::make_unique<Rng>(config.seed + 10)),
      enc2_(config.base_filters, 2 * config.base_filters,
            *std::make_unique<Rng>(config.seed + 11)),
      bottleneck_(2 * config.base_filters, 4 * config.base_filters,
                  *std::make_unique<Rng>(config.seed + 12)),
      up2_(4 * config.base_filters, 2 * config.base_filters, 2,
           *std::make_unique<Rng>(config.seed + 13), 2, 0),
      dec2_(4 * config.base_filters, 2 * config.base_filters,
            *std::make_unique<Rng>(config.seed + 14)),
      up1_(2 * config.base_filters, config.base_filters, 2,
           *std::make_unique<Rng>(config.seed + 15), 2, 0),
      dec1_(2 * config.base_filters, config.base_filters,
            *std::make_unique<Rng>(config.seed + 16)),
      head_(config.base_filters, config.num_classes, 1,
            *std::make_unique<Rng>(config.seed + 17)) {
  RegisterModule("enc1", &enc1_);
  RegisterModule("enc2", &enc2_);
  RegisterModule("bottleneck", &bottleneck_);
  RegisterModule("up2", &up2_);
  RegisterModule("dec2", &dec2_);
  RegisterModule("up1", &up1_);
  RegisterModule("dec1", &dec1_);
  RegisterModule("head", &head_);
}

ag::Variable UNet::Forward(const ag::Variable& x) {
  ag::Variable e1 = enc1_.Forward(x);                       // full
  ag::Variable e2 = enc2_.Forward(ag::MaxPool2d(e1, 2));    // 1/2
  ag::Variable b = bottleneck_.Forward(ag::MaxPool2d(e2, 2));  // 1/4
  ag::Variable d2 = dec2_.Forward(ag::Concat({up2_.Forward(b), e2}, 1));
  ag::Variable d1 = dec1_.Forward(ag::Concat({up1_.Forward(d2), e1}, 1));
  return head_.Forward(d1);
}

// --- UNetPlusPlus ---------------------------------------------------------

UNetPlusPlus::UNetPlusPlus(const SegModelConfig& config)
    : config_(config),
      x00_(config.in_channels, config.base_filters,
           *std::make_unique<Rng>(config.seed + 20)),
      x10_(config.base_filters, 2 * config.base_filters,
           *std::make_unique<Rng>(config.seed + 21)),
      x20_(2 * config.base_filters, 4 * config.base_filters,
           *std::make_unique<Rng>(config.seed + 22)),
      up10_(2 * config.base_filters, config.base_filters, 2,
            *std::make_unique<Rng>(config.seed + 23), 2, 0),
      x01_(2 * config.base_filters, config.base_filters,
           *std::make_unique<Rng>(config.seed + 24)),
      up20_(4 * config.base_filters, 2 * config.base_filters, 2,
            *std::make_unique<Rng>(config.seed + 25), 2, 0),
      x11_(4 * config.base_filters, 2 * config.base_filters,
           *std::make_unique<Rng>(config.seed + 26)),
      up11_(2 * config.base_filters, config.base_filters, 2,
            *std::make_unique<Rng>(config.seed + 27), 2, 0),
      x02_(3 * config.base_filters, config.base_filters,
           *std::make_unique<Rng>(config.seed + 28)),
      head_(config.base_filters, config.num_classes, 1,
            *std::make_unique<Rng>(config.seed + 29)) {
  RegisterModule("x00", &x00_);
  RegisterModule("x10", &x10_);
  RegisterModule("x20", &x20_);
  RegisterModule("up10", &up10_);
  RegisterModule("x01", &x01_);
  RegisterModule("up20", &up20_);
  RegisterModule("x11", &x11_);
  RegisterModule("up11", &up11_);
  RegisterModule("x02", &x02_);
  RegisterModule("head", &head_);
}

ag::Variable UNetPlusPlus::Forward(const ag::Variable& x) {
  // Encoder column.
  ag::Variable n00 = x00_.Forward(x);                       // full
  ag::Variable n10 = x10_.Forward(ag::MaxPool2d(n00, 2));   // 1/2
  ag::Variable n20 = x20_.Forward(ag::MaxPool2d(n10, 2));   // 1/4
  // First nested column.
  ag::Variable n01 =
      x01_.Forward(ag::Concat({n00, up10_.Forward(n10)}, 1));
  ag::Variable n11 =
      x11_.Forward(ag::Concat({n10, up20_.Forward(n20)}, 1));
  // Dense second column: sees X(0,0), X(0,1), up(X(1,1)).
  ag::Variable n02 =
      x02_.Forward(ag::Concat({n00, n01, up11_.Forward(n11)}, 1));
  return head_.Forward(n02);
}

}  // namespace geotorch::models
