#include "nn/module.h"

#include <cstring>

#include "core/check.h"
#include "tensor/shape.h"

namespace geotorch::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, p] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, p);
    }
  }
  return out;
}

Status Module::LoadNamedParameter(const std::string& name,
                                  const tensor::Tensor& value) {
  auto named = NamedParameters();
  for (auto& [pname, p] : named) {
    if (pname != name) continue;
    if (!tensor::SameShape(p.shape(), value.shape())) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + name + "': module has " +
          tensor::ShapeToString(p.shape()) + ", value has " +
          tensor::ShapeToString(value.shape()));
    }
    if (value.numel() > 0) {
      std::memcpy(p.mutable_value().data(), value.data(),
                  static_cast<size_t>(value.numel()) * sizeof(float));
    }
    return Status::OK();
  }
  return Status::NotFound("no parameter named '" + name + "'");
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::SetPrecision(Precision precision) {
  precision_ = precision;
  for (auto& [name, child] : children_) child->SetPrecision(precision);
  OnPrecisionChanged();
}

void Module::SetCalibrating(bool calibrating) {
  calibrating_ = calibrating;
  for (auto& [name, child] : children_) child->SetCalibrating(calibrating);
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.numel();
  return n;
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterModule(std::string name, Module* child) {
  GEO_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace geotorch::nn
