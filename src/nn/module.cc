#include "nn/module.h"

#include <cstring>

#include "core/check.h"
#include "tensor/shape.h"

namespace geotorch::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, p] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, p);
    }
  }
  return out;
}

Status Module::LoadNamedParameter(const std::string& name,
                                  const tensor::Tensor& value) {
  return LoadNamedParameterImpl(name, name, value);
}

// Recurses along the dotted path so the write lands on (and bumps the
// state version of) the module that actually owns the parameter —
// a flat scan over NamedParameters() could not tell whose derived
// caches went stale. Error messages always cite the full path the
// caller used, not the per-level remainder.
Status Module::LoadNamedParameterImpl(const std::string& name,
                                      const std::string& full_name,
                                      const tensor::Tensor& value) {
  for (auto& [pname, p] : params_) {
    if (pname != name) continue;
    if (!tensor::SameShape(p.shape(), value.shape())) {
      return Status::InvalidArgument(
          "shape mismatch for parameter '" + full_name + "': module has " +
          tensor::ShapeToString(p.shape()) + ", value has " +
          tensor::ShapeToString(value.shape()));
    }
    if (value.numel() > 0) {
      std::memcpy(p.mutable_value().data(), value.data(),
                  static_cast<size_t>(value.numel()) * sizeof(float));
    }
    BumpStateVersion();
    return Status::OK();
  }
  for (auto& [cname, child] : children_) {
    if (name.size() > cname.size() + 1 && name[cname.size()] == '.' &&
        name.compare(0, cname.size(), cname) == 0) {
      return child->LoadNamedParameterImpl(name.substr(cname.size() + 1),
                                           full_name, value);
    }
  }
  return Status::NotFound("no parameter named '" + full_name + "'");
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  BumpStateVersion();
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::SetPrecision(Precision precision) {
  precision_ = precision;
  BumpStateVersion();
  for (auto& [name, child] : children_) child->SetPrecision(precision);
  OnPrecisionChanged();
}

void Module::SetCalibrating(bool calibrating) {
  calibrating_ = calibrating;
  BumpStateVersion();
  for (auto& [name, child] : children_) child->SetCalibrating(calibrating);
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const auto& p : Parameters()) n += p.numel();
  return n;
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterModule(std::string name, Module* child) {
  GEO_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace geotorch::nn
