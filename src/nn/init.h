#ifndef GEOTORCH_NN_INIT_H_
#define GEOTORCH_NN_INIT_H_

#include "core/rng.h"
#include "tensor/tensor.h"

namespace geotorch::nn {

/// He/Kaiming uniform initialization: U[-sqrt(6/fan_in), sqrt(6/fan_in)].
/// Default for layers followed by ReLU.
tensor::Tensor KaimingUniform(tensor::Shape shape, int64_t fan_in, Rng& rng);

/// Glorot/Xavier uniform: U[-sqrt(6/(fan_in+fan_out)), +...]. Default
/// for layers followed by tanh/sigmoid (the ConvLSTM gates).
tensor::Tensor XavierUniform(tensor::Shape shape, int64_t fan_in,
                             int64_t fan_out, Rng& rng);

/// fan_in of a conv weight (F, C, KH, KW) = C*KH*KW; of a linear
/// weight (in, out) = in.
int64_t ConvFanIn(const tensor::Shape& weight_shape);

}  // namespace geotorch::nn

#endif  // GEOTORCH_NN_INIT_H_
