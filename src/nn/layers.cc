#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/memory.h"
#include "nn/init.h"
#include "obs/obs.h"
#include "tensor/conv.h"
#include "tensor/fusion.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"

namespace geotorch::nn {

namespace ag = ::geotorch::autograd;
namespace ts = ::geotorch::tensor;

namespace {

// Publishes the worst per-element dequantization error of an int8
// weight cache, as parts-per-million of the tensor's absmax. Gauges are
// last-write-wins, so the value reflects the most recently quantized
// layer — enough to spot a layer whose distribution quantizes badly.
void PublishWeightQuantError(const float* w, const int8_t* q,
                             const float* scales, int64_t rows, int64_t cols,
                             bool per_row) {
  float max_err = 0.0f;
  float absmax = 0.0f;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const float orig = w[r * cols + c];
      const float s = per_row ? scales[r] : scales[c];
      max_err = std::max(max_err,
                         std::fabs(orig - static_cast<float>(q[r * cols + c]) *
                                              s));
      absmax = std::max(absmax, std::fabs(orig));
    }
  }
  if (absmax > 0.0f) {
    obs::SetGauge("quant.weight_err_ppm",
                  static_cast<int64_t>(1e6f * max_err / absmax + 0.5f));
  }
}

// True when the eval forward should take a low-precision kernel: never
// in training or calibration, and never when a gradient graph is being
// recorded (low-precision paths have no backward).
bool UseLowPrecision(const Module& m) {
  return !m.training() && !m.calibrating() &&
         m.precision() != Precision::kF32 && !ag::GradEnabled();
}

void AddBiasRow(float* y, const float* b, int64_t m, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* row = y + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += b[j];
  }
}

}  // namespace

bool FusedEvalEligible(const Module& m) {
  return !m.training() && !m.calibrating() && !ag::GradEnabled() &&
         ts::FusionEnabled();
}

// --- Linear ---------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool bias)
    : has_bias_(bias) {
  weight_ = RegisterParameter(
      "weight",
      KaimingUniform({in_features, out_features}, in_features, rng));
  if (has_bias_) {
    bias_ = RegisterParameter("bias", ts::Tensor::Zeros({out_features}));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) {
  GEO_CHECK_EQ(x.value().ndim(), 2);
  const ts::Tensor& xv = x.value();
  if (!training() && calibrating()) {
    act_absmax_ = std::max(act_absmax_, ts::AbsMax(xv.data(), xv.numel()));
  }
  if (UseLowPrecision(*this)) {
    const int64_t m = xv.size(0);
    const int64_t k = xv.size(1);
    const int64_t n = weight_.shape()[1];
    if (precision() == Precision::kBf16 && !w_bf16_.empty()) {
      ts::Tensor y = ts::Tensor::Uninitialized({m, n});
      ts::GemmBf16(xv.data(), ts::Bf16PackedB{w_bf16_.data()}, y.data(), m, k,
                   n);
      if (has_bias_) AddBiasRow(y.data(), bias_.value().data(), m, n);
      return ag::Variable(std::move(y));
    }
    if (precision() == Precision::kInt8 && !w_q_.empty()) {
      const float act_scale =
          act_absmax_ > 0.0f
              ? ts::SymmetricScale(act_absmax_)
              : ts::SymmetricScale(ts::AbsMax(xv.data(), xv.numel()));
      int8_t* xq = reinterpret_cast<int8_t*>(
          ThreadLocalWorkspace(kWorkspaceQuant, (m * k + 3) / 4));
      ts::QuantizeInt8(xv.data(), m * k, act_scale, xq);
      ts::Tensor y = ts::Tensor::Uninitialized({m, n});
      ts::Int8GemmOptions opts;
      opts.a_scales = &act_scale;
      opts.a_scales_len = 1;
      opts.b_scales = w_scales_.data();
      opts.b_scales_len = n;
      ts::GemmInt8(xq, ts::Int8PackedB{w_q_.data()}, y.data(), m, k, n, opts);
      if (has_bias_) AddBiasRow(y.data(), bias_.value().data(), m, n);
      return ag::Variable(std::move(y));
    }
  }
  ag::Variable y = ag::MatMul(x, weight_);
  if (has_bias_) y = ag::Add(y, bias_);
  return y;
}

void Linear::OnPrecisionChanged() {
  w_bf16_.clear();
  w_q_.clear();
  w_scales_.clear();
  const ts::Tensor& w = weight_.value();
  const int64_t in = w.size(0);
  const int64_t out = w.size(1);
  // The weight is the (constant) B operand of every serving matmul, so
  // it is stored pre-packed in the kernel's panel layout — the per-call
  // cost of the low-precision GEMM is then just packing the small
  // activation panel.
  if (precision() == Precision::kBf16) {
    std::vector<uint16_t> raw(w.numel());
    ts::ConvertToBf16(w.data(), raw.data(), w.numel());
    w_bf16_.resize(ts::Bf16PackedBSize(in, out));
    ts::PackBf16B(raw.data(), in, out, w_bf16_.data());
  } else if (precision() == Precision::kInt8) {
    std::vector<int8_t> raw(w.numel());
    w_scales_.resize(out);
    ts::QuantizeColsInt8(w.data(), in, out, raw.data(), w_scales_.data());
    PublishWeightQuantError(w.data(), raw.data(), w_scales_.data(), in, out,
                            /*per_row=*/false);
    w_q_.resize(ts::Int8PackedBSize(in, out));
    ts::PackInt8B(raw.data(), in, out, w_q_.data());
  }
}

ag::Variable Linear::ForwardFusedEval(const ag::Variable& x,
                                      ts::EpilogueAct act, float leaky_slope) {
  GEO_CHECK_EQ(x.value().ndim(), 2);
  GEO_OBS_COUNT("fusion.linear_calls", 1);
  const ts::Tensor& xv = x.value();
  const int64_t m = xv.size(0);
  const int64_t k = xv.size(1);
  const int64_t n = weight_.shape()[1];
  ts::GemmEpilogue ep;
  ep.col_bias = has_bias_ ? bias_.value().data() : nullptr;
  ep.act = act;
  ep.leaky_slope = leaky_slope;
  ts::Tensor y = ts::Tensor::Uninitialized({m, n});
  if (UseLowPrecision(*this)) {
    if (precision() == Precision::kBf16 && !w_bf16_.empty()) {
      ts::GemmOptions opts;
      opts.epilogue = &ep;
      ts::GemmBf16(xv.data(), ts::Bf16PackedB{w_bf16_.data()}, y.data(), m, k,
                   n, opts);
      return ag::Variable(std::move(y));
    }
    if (precision() == Precision::kInt8 && !w_q_.empty()) {
      const float act_scale =
          act_absmax_ > 0.0f
              ? ts::SymmetricScale(act_absmax_)
              : ts::SymmetricScale(ts::AbsMax(xv.data(), xv.numel()));
      int8_t* xq = reinterpret_cast<int8_t*>(
          ThreadLocalWorkspace(kWorkspaceQuant, (m * k + 3) / 4));
      ts::QuantizeInt8(xv.data(), m * k, act_scale, xq);
      ts::Int8GemmOptions opts;
      opts.a_scales = &act_scale;
      opts.a_scales_len = 1;
      opts.b_scales = w_scales_.data();
      opts.b_scales_len = n;
      opts.epilogue = &ep;
      ts::GemmInt8(xq, ts::Int8PackedB{w_q_.data()}, y.data(), m, k, n, opts);
      return ag::Variable(std::move(y));
    }
  }
  ts::GemmOptions opts;
  opts.epilogue = &ep;
  ts::Gemm(xv.data(), weight_.value().data(), y.data(), m, k, n, opts);
  return ag::Variable(std::move(y));
}

// --- Conv2d ---------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               Rng& rng, int64_t stride, int64_t padding, bool bias)
    : has_bias_(bias) {
  spec_.stride = stride;
  spec_.padding = padding;
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight", KaimingUniform({out_channels, in_channels, kernel, kernel},
                               fan_in, rng));
  if (has_bias_) {
    bias_ = RegisterParameter("bias", ts::Tensor::Zeros({out_channels}));
  }
}

ag::Variable Conv2d::Forward(const ag::Variable& x) {
  const ts::Tensor& xv = x.value();
  if (!training() && calibrating()) {
    act_absmax_ = std::max(act_absmax_, ts::AbsMax(xv.data(), xv.numel()));
  }
  if (UseLowPrecision(*this)) {
    const ts::Tensor& w = weight_.value();
    const int64_t f = w.size(0);
    const int64_t c = w.size(1);
    const int64_t kh = w.size(2);
    const int64_t kw = w.size(3);
    const ts::Tensor empty;
    const ts::Tensor& b = has_bias_ ? bias_.value() : empty;
    if (precision() == Precision::kBf16 && !w_bf16_.empty()) {
      return ag::Variable(
          ts::Conv2dForwardBf16(xv, w_bf16_.data(), f, c, kh, kw, b, spec_));
    }
    if (precision() == Precision::kInt8 && !w_q_.empty()) {
      const float act_scale =
          act_absmax_ > 0.0f ? ts::SymmetricScale(act_absmax_) : 0.0f;
      return ag::Variable(ts::Conv2dForwardInt8(xv, w_q_.data(),
                                                w_scales_.data(), f, c, kh, kw,
                                                act_scale, b, spec_));
    }
  }
  return ag::Conv2d(x, weight_, has_bias_ ? bias_ : ag::Variable(), spec_);
}

void Conv2d::OnPrecisionChanged() {
  w_bf16_.clear();
  w_q_.clear();
  w_scales_.clear();
  const ts::Tensor& w = weight_.value();
  if (precision() == Precision::kBf16) {
    w_bf16_.resize(w.numel());
    ts::ConvertToBf16(w.data(), w_bf16_.data(), w.numel());
  } else if (precision() == Precision::kInt8) {
    const int64_t f = w.size(0);
    const int64_t ck = w.numel() / f;
    w_q_.resize(w.numel());
    w_scales_.resize(f);
    ts::QuantizeRowsInt8(w.data(), f, ck, w_q_.data(), w_scales_.data());
    PublishWeightQuantError(w.data(), w_q_.data(), w_scales_.data(), f, ck,
                            /*per_row=*/true);
  }
}

ag::Variable Conv2d::ForwardFusedEval(const ag::Variable& x,
                                      const BatchNorm2d* bn,
                                      ts::EpilogueAct act, float leaky_slope) {
  const ts::Tensor& xv = x.value();
  const ts::Tensor& w = weight_.value();
  const int64_t f = w.size(0);
  const int64_t c = w.size(1);
  const int64_t kh = w.size(2);
  const int64_t kw = w.size(3);
  const bool lp = UseLowPrecision(*this);
  if (bn == nullptr) {
    // No folding: fuse only the bias + activation epilogue over the
    // live parameters (bitwise vs the unfused sequence).
    const ts::Tensor empty;
    const ts::Tensor& b = has_bias_ ? bias_.value() : empty;
    if (lp && precision() == Precision::kBf16 && !w_bf16_.empty()) {
      return ag::Variable(ts::Conv2dForwardFusedBf16(
          xv, w_bf16_.data(), f, c, kh, kw, b, spec_, act, leaky_slope));
    }
    if (lp && precision() == Precision::kInt8 && !w_q_.empty()) {
      const float act_scale =
          act_absmax_ > 0.0f ? ts::SymmetricScale(act_absmax_) : 0.0f;
      return ag::Variable(ts::Conv2dForwardFusedInt8(
          xv, w_q_.data(), w_scales_.data(), f, c, kh, kw, act_scale, b,
          spec_, act, leaky_slope));
    }
    return ag::Variable(
        ts::Conv2dForwardFused(xv, w, b, spec_, act, leaky_slope));
  }
  GEO_CHECK_EQ(bn->channels(), f) << "conv+BN fusion channel mismatch";
  const Precision prec = lp ? precision() : Precision::kF32;
  RefreshFoldedCache(*bn, prec);
  if (prec == Precision::kBf16 && !fold_.w_bf16.empty()) {
    return ag::Variable(ts::Conv2dForwardFusedBf16(
        xv, fold_.w_bf16.data(), f, c, kh, kw, fold_.b, spec_, act,
        leaky_slope));
  }
  if (prec == Precision::kInt8 && !fold_.w_q.empty()) {
    const float act_scale =
        act_absmax_ > 0.0f ? ts::SymmetricScale(act_absmax_) : 0.0f;
    return ag::Variable(ts::Conv2dForwardFusedInt8(
        xv, fold_.w_q.data(), fold_.w_scales.data(), f, c, kh, kw, act_scale,
        fold_.b, spec_, act, leaky_slope));
  }
  return ag::Variable(
      ts::Conv2dForwardFused(xv, fold_.w, fold_.b, spec_, act, leaky_slope));
}

void Conv2d::RefreshFoldedCache(const BatchNorm2d& bn, Precision prec) {
  std::lock_guard<std::mutex> lock(fold_mu_);
  if (fold_.valid && fold_.bn == &bn && fold_.conv_version == state_version() &&
      fold_.bn_version == bn.state_version() && fold_.precision == prec) {
    return;
  }
  GEO_OBS_COUNT("fusion.fold_rebuilds", 1);
  const ts::Tensor& w = weight_.value();
  const int64_t f = w.size(0);
  const int64_t ck = w.numel() / f;
  std::vector<float> scale;
  std::vector<float> shift;
  bn.FoldedAffine(&scale, &shift);
  // Fold first, always from the f32 parameters; quantization (below)
  // then sees the already-scaled weights, so per-channel int8 scales
  // adapt to the folded magnitudes.
  fold_.w = ts::Tensor::Uninitialized(w.shape());
  fold_.b = ts::Tensor::Uninitialized({f});
  const float* pw = w.data();
  const float* pb = has_bias_ ? bias_.value().data() : nullptr;
  float* pfw = fold_.w.data();
  float* pfb = fold_.b.data();
  for (int64_t fi = 0; fi < f; ++fi) {
    const float s = scale[fi];
    for (int64_t j = 0; j < ck; ++j) pfw[fi * ck + j] = pw[fi * ck + j] * s;
    pfb[fi] = (pb != nullptr ? pb[fi] * s : 0.0f) + shift[fi];
  }
  fold_.w_bf16.clear();
  fold_.w_q.clear();
  fold_.w_scales.clear();
  if (prec == Precision::kBf16) {
    fold_.w_bf16.resize(w.numel());
    ts::ConvertToBf16(pfw, fold_.w_bf16.data(), w.numel());
  } else if (prec == Precision::kInt8) {
    fold_.w_q.resize(w.numel());
    fold_.w_scales.resize(f);
    ts::QuantizeRowsInt8(pfw, f, ck, fold_.w_q.data(), fold_.w_scales.data());
    PublishWeightQuantError(pfw, fold_.w_q.data(), fold_.w_scales.data(), f,
                            ck, /*per_row=*/true);
  }
  fold_.bn = &bn;
  fold_.conv_version = state_version();
  fold_.bn_version = bn.state_version();
  fold_.precision = prec;
  fold_.valid = true;
}

// --- ConvTranspose2d -------------------------------------------------------

ConvTranspose2d::ConvTranspose2d(int64_t in_channels, int64_t out_channels,
                                 int64_t kernel, Rng& rng, int64_t stride,
                                 int64_t padding, bool bias)
    : has_bias_(bias) {
  spec_.stride = stride;
  spec_.padding = padding;
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight", KaimingUniform({in_channels, out_channels, kernel, kernel},
                               fan_in, rng));
  if (has_bias_) {
    bias_ = RegisterParameter("bias", ts::Tensor::Zeros({out_channels}));
  }
}

ag::Variable ConvTranspose2d::Forward(const ag::Variable& x) {
  return ag::ConvTranspose2d(x, weight_,
                             has_bias_ ? bias_ : ag::Variable(), spec_);
}

// --- BatchNorm2d ------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : eps_(eps), momentum_(momentum), channels_(channels) {
  gamma_ = RegisterParameter("gamma", ts::Tensor::Ones({1, channels, 1, 1}));
  beta_ = RegisterParameter("beta", ts::Tensor::Zeros({1, channels, 1, 1}));
  running_mean_ = ts::Tensor::Zeros({1, channels, 1, 1});
  running_var_ = ts::Tensor::Ones({1, channels, 1, 1});
}

ag::Variable BatchNorm2d::Forward(const ag::Variable& x) {
  GEO_CHECK_EQ(x.value().ndim(), 4);
  GEO_CHECK_EQ(x.shape()[1], channels_);
  if (training()) {
    // Batch statistics over (N, H, W), differentiable.
    ag::Variable mean =
        ag::Mean(ag::Mean(ag::Mean(x, 0, true), 2, true), 3, true);
    ag::Variable centered = ag::Sub(x, mean);
    ag::Variable var = ag::Mean(
        ag::Mean(ag::Mean(ag::Mul(centered, centered), 0, true), 2, true), 3,
        true);
    ag::Variable inv_std = ag::PowScalar(ag::AddScalar(var, eps_), -0.5f);
    ag::Variable norm = ag::Mul(centered, inv_std);
    // Running statistics (no autograd): ema of batch stats. The eval
    // caches (inv_std, folded affine) depend on them, so flag them
    // stale.
    {
      const float m = momentum_;
      running_mean_.ScaleInPlace(1.0f - m);
      ts::AddScaledInPlace(running_mean_, mean.value(), m);
      running_var_.ScaleInPlace(1.0f - m);
      ts::AddScaledInPlace(running_var_, var.value(), m);
      BumpStateVersion();
    }
    return ag::Add(ag::Mul(norm, gamma_), beta_);
  }
  // Eval: use running stats as constants. inv_std comes from the
  // version-keyed cache; it was previously recomputed (two temporary
  // tensors and a pow) on every call.
  RefreshEvalCache();
  ag::Variable mean(running_mean_);
  ag::Variable inv_std(inv_std_);
  ag::Variable norm = ag::Mul(ag::Sub(x, mean), inv_std);
  return ag::Add(ag::Mul(norm, gamma_), beta_);
}

void BatchNorm2d::RefreshEvalCache() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_valid_ && cache_version_ == state_version()) return;
  GEO_OBS_COUNT("fusion.bn_cache_rebuilds", 1);
  // Exact op sequence of the old per-call eval path, so the cached
  // tensor is bitwise what the uncached forward multiplied by.
  inv_std_ = ts::PowScalar(ts::AddScalar(running_var_, eps_), -0.5f);
  fold_scale_.assign(channels_, 0.0f);
  fold_shift_.assign(channels_, 0.0f);
  const float* g = gamma_.value().data();
  const float* b = beta_.value().data();
  const float* mu = running_mean_.data();
  const float* inv = inv_std_.data();
  for (int64_t ci = 0; ci < channels_; ++ci) {
    fold_scale_[ci] = g[ci] * inv[ci];
    fold_shift_[ci] = b[ci] - mu[ci] * fold_scale_[ci];
  }
  cache_version_ = state_version();
  cache_valid_ = true;
}

void BatchNorm2d::FoldedAffine(std::vector<float>* scale,
                               std::vector<float>* shift) const {
  RefreshEvalCache();
  std::lock_guard<std::mutex> lock(cache_mu_);
  *scale = fold_scale_;
  *shift = fold_shift_;
}

// --- Dropout -----------------------------------------------------------------

Dropout::Dropout(float p, uint64_t seed) : p_(p), rng_(seed) {
  GEO_CHECK(p >= 0.0f && p < 1.0f);
}

ag::Variable Dropout::Forward(const ag::Variable& x) {
  return ag::Dropout(x, p_, training(), rng_);
}

// --- Sequential ----------------------------------------------------------------

Sequential& Sequential::Add(std::unique_ptr<UnaryModule> layer) {
  RegisterModule("layer" + std::to_string(layers_.size()), layer.get());
  layers_.push_back(std::move(layer));
  return *this;
}

namespace {

// Maps an activation layer onto its GEMM-epilogue equivalent. Tanh has
// no epilogue (it never follows a conv/linear in the repo's models).
bool EpilogueActOf(UnaryModule* m, ts::EpilogueAct* act, float* slope) {
  if (dynamic_cast<ReluLayer*>(m) != nullptr) {
    *act = ts::EpilogueAct::kRelu;
    return true;
  }
  if (auto* leaky = dynamic_cast<LeakyReluLayer*>(m)) {
    *act = ts::EpilogueAct::kLeakyRelu;
    *slope = leaky->slope();
    return true;
  }
  if (dynamic_cast<SigmoidLayer*>(m) != nullptr) {
    *act = ts::EpilogueAct::kSigmoid;
    return true;
  }
  return false;
}

}  // namespace

ag::Variable Sequential::Forward(const ag::Variable& x) {
  if (FusedEvalEligible(*this)) return ForwardFusedEval(x);
  ag::Variable cur = x;
  for (auto& layer : layers_) cur = layer->Forward(cur);
  return cur;
}

ag::Variable Sequential::ForwardFusedEval(const ag::Variable& x) {
  ag::Variable cur = x;
  size_t i = 0;
  while (i < layers_.size()) {
    UnaryModule* m = layers_[i].get();
    ts::EpilogueAct act = ts::EpilogueAct::kNone;
    float slope = 0.01f;
    if (auto* conv = dynamic_cast<Conv2d*>(m)) {
      size_t next = i + 1;
      BatchNorm2d* bn = nullptr;
      if (next < layers_.size()) {
        bn = dynamic_cast<BatchNorm2d*>(layers_[next].get());
        if (bn != nullptr) ++next;
      }
      if (next < layers_.size() &&
          EpilogueActOf(layers_[next].get(), &act, &slope)) {
        ++next;
      }
      if (bn != nullptr || act != ts::EpilogueAct::kNone) {
        GEO_OBS_COUNT("fusion.seq_conv_groups", 1);
        cur = conv->ForwardFusedEval(cur, bn, act, slope);
        i = next;
        continue;
      }
    } else if (auto* linear = dynamic_cast<Linear*>(m)) {
      if (i + 1 < layers_.size() &&
          EpilogueActOf(layers_[i + 1].get(), &act, &slope)) {
        cur = linear->ForwardFusedEval(cur, act, slope);
        i += 2;
        continue;
      }
    }
    cur = m->Forward(cur);
    ++i;
  }
  return cur;
}

// --- LstmCell ---------------------------------------------------------------

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size) {
  const int64_t gates = 4 * hidden_size;
  w_x_ = RegisterParameter(
      "w_x", XavierUniform({input_size, gates}, input_size, hidden_size, rng));
  w_h_ = RegisterParameter(
      "w_h", XavierUniform({hidden_size, gates}, hidden_size, hidden_size,
                           rng));
  ts::Tensor b = ts::Tensor::Zeros({gates});
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) b.flat(i) = 1.0f;
  bias_ = RegisterParameter("bias", b);
}

LstmCell::State LstmCell::InitialState(int64_t n) const {
  return State{ag::Variable(ts::Tensor::Zeros({n, hidden_size_})),
               ag::Variable(ts::Tensor::Zeros({n, hidden_size_}))};
}

LstmCell::State LstmCell::Step(const ag::Variable& x, const State& prev) {
  ag::Variable gates = ag::Add(
      ag::Add(ag::MatMul(x, w_x_), ag::MatMul(prev.h, w_h_)), bias_);
  const int64_t hs = hidden_size_;
  ag::Variable i = ag::Sigmoid(ag::Slice(gates, 1, 0, hs));
  ag::Variable f = ag::Sigmoid(ag::Slice(gates, 1, hs, 2 * hs));
  ag::Variable g = ag::Tanh(ag::Slice(gates, 1, 2 * hs, 3 * hs));
  ag::Variable o = ag::Sigmoid(ag::Slice(gates, 1, 3 * hs, 4 * hs));
  State next;
  next.c = ag::Add(ag::Mul(f, prev.c), ag::Mul(i, g));
  next.h = ag::Mul(o, ag::Tanh(next.c));
  return next;
}

// --- ConvLstmCell -----------------------------------------------------------

ConvLstmCell::ConvLstmCell(int64_t in_channels, int64_t hidden_channels,
                           int64_t kernel, Rng& rng)
    : hidden_channels_(hidden_channels) {
  GEO_CHECK_EQ(kernel % 2, 1) << "ConvLSTM kernel must be odd (same pad)";
  spec_.stride = 1;
  spec_.padding = kernel / 2;
  const int64_t gates = 4 * hidden_channels;
  w_x_ = RegisterParameter(
      "w_x", XavierUniform({gates, in_channels, kernel, kernel},
                           in_channels * kernel * kernel,
                           hidden_channels * kernel * kernel, rng));
  w_h_ = RegisterParameter(
      "w_h", XavierUniform({gates, hidden_channels, kernel, kernel},
                           hidden_channels * kernel * kernel,
                           hidden_channels * kernel * kernel, rng));
  // Forget-gate bias starts positive so early training remembers.
  ts::Tensor b = ts::Tensor::Zeros({gates});
  for (int64_t i = hidden_channels; i < 2 * hidden_channels; ++i) {
    b.flat(i) = 1.0f;
  }
  bias_ = RegisterParameter("bias", b);
}

ConvLstmCell::State ConvLstmCell::InitialState(int64_t n, int64_t h,
                                               int64_t w) const {
  return State{
      ag::Variable(ts::Tensor::Zeros({n, hidden_channels_, h, w})),
      ag::Variable(ts::Tensor::Zeros({n, hidden_channels_, h, w}))};
}

ConvLstmCell::State ConvLstmCell::Step(const ag::Variable& x,
                                       const State& prev) {
  ag::Variable gates = ag::Add(ag::Conv2d(x, w_x_, bias_, spec_),
                               ag::Conv2d(prev.h, w_h_, ag::Variable(), spec_));
  const int64_t hc = hidden_channels_;
  ag::Variable i = ag::Sigmoid(ag::Slice(gates, 1, 0, hc));
  ag::Variable f = ag::Sigmoid(ag::Slice(gates, 1, hc, 2 * hc));
  ag::Variable g = ag::Tanh(ag::Slice(gates, 1, 2 * hc, 3 * hc));
  ag::Variable o = ag::Sigmoid(ag::Slice(gates, 1, 3 * hc, 4 * hc));
  State next;
  next.c = ag::Add(ag::Mul(f, prev.c), ag::Mul(i, g));
  next.h = ag::Mul(o, ag::Tanh(next.c));
  return next;
}

}  // namespace geotorch::nn
