#ifndef GEOTORCH_NN_PRECISION_H_
#define GEOTORCH_NN_PRECISION_H_

#include <string>

namespace geotorch::nn {

/// Numeric mode for the eval-time forward pass of Linear / Conv2d
/// (DESIGN.md §10). Training always runs f32 regardless of this
/// setting; low-precision kernels engage only when the module is in
/// eval mode with gradients disabled.
enum class Precision {
  kF32,   ///< full-precision f32 GEMM (default)
  kBf16,  ///< bf16-storage, f32-accumulate GEMM
  kInt8,  ///< int8 symmetric-quantized GEMM, i32 accumulation
};

inline const char* PrecisionName(Precision p) {
  switch (p) {
    case Precision::kF32:
      return "f32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "f32";
}

/// Parses "f32" / "bf16" / "int8" (the GEOTORCH_SERVE_PRECISION
/// values). Returns false — leaving *out untouched — on anything else.
inline bool ParsePrecision(const std::string& s, Precision* out) {
  if (s == "f32" || s == "fp32" || s == "float32") {
    *out = Precision::kF32;
    return true;
  }
  if (s == "bf16" || s == "bfloat16") {
    *out = Precision::kBf16;
    return true;
  }
  if (s == "int8" || s == "i8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

}  // namespace geotorch::nn

#endif  // GEOTORCH_NN_PRECISION_H_
