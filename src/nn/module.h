#ifndef GEOTORCH_NN_MODULE_H_
#define GEOTORCH_NN_MODULE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/status.h"
#include "nn/precision.h"

namespace geotorch::nn {

/// Base class for neural-network layers and models. Mirrors
/// torch.nn.Module: parameters register themselves at construction,
/// Parameters() walks the module tree, and SetTraining toggles
/// behaviours such as dropout and batch-norm statistics.
///
/// Modules are neither copyable nor movable; compose them as members
/// and register each child with RegisterModule in the constructor.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children.
  std::vector<autograd::Variable> Parameters() const;

  /// Named parameters, prefixed with the child path ("conv1.weight").
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// Overwrites the parameter called `name` (a NamedParameters path)
  /// with `value`, copying into the existing storage so autograd nodes
  /// and optimizer references stay valid. NotFound when no parameter
  /// has that name; InvalidArgument on a shape mismatch. This is the
  /// write hook the io/ checkpoint loader and the serving engine use.
  Status LoadNamedParameter(const std::string& name,
                            const tensor::Tensor& value);

  /// Clears every parameter gradient.
  void ZeroGrad();

  /// Switches training/eval mode recursively.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Selects the eval-path numeric mode recursively. Layers with a
  /// low-precision kernel (Linear, Conv2d) re-derive their quantized /
  /// bf16 weight caches from the current f32 parameters, so call this
  /// (again) after loading a checkpoint. Training forwards ignore the
  /// setting and stay f32.
  void SetPrecision(Precision precision);
  Precision precision() const { return precision_; }

  /// Toggles calibration mode recursively. While calibrating, eval
  /// forwards run in f32 and quantizing layers record the absolute
  /// maximum of their activations; the next int8 forward uses that
  /// static per-tensor scale instead of a per-batch dynamic one.
  void SetCalibrating(bool calibrating);
  bool calibrating() const { return calibrating_; }

  /// Total number of scalar parameters.
  int64_t NumParameters() const;

  /// Monotonic counter bumped whenever state that derived caches depend
  /// on changes: parameter loads, running-stat updates, train/eval
  /// flips, precision or calibration changes. The fused eval path
  /// snapshots folded / quantized weights keyed on this counter, so a
  /// stale cache is detected by a plain integer compare. Mutation is
  /// not synchronized: per the serving contract (DESIGN.md §13), state
  /// changes happen only on offline models, never on a model that is
  /// concurrently serving forwards.
  uint64_t state_version() const { return state_version_; }

 protected:
  /// Registers a leaf parameter initialized to `init`.
  autograd::Variable RegisterParameter(std::string name,
                                       tensor::Tensor init);
  /// Registers a child module (must outlive this module; typically a
  /// data member).
  void RegisterModule(std::string name, Module* child);

  /// Hook invoked after precision() changes; layers rebuild their
  /// low-precision weight caches here.
  virtual void OnPrecisionChanged() {}

  /// Marks derived caches stale. Subclasses call this when they mutate
  /// non-parameter state that caches depend on (e.g. BatchNorm running
  /// statistics).
  void BumpStateVersion() { ++state_version_; }

 private:
  Status LoadNamedParameterImpl(const std::string& name,
                                const std::string& full_name,
                                const tensor::Tensor& value);

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
  Precision precision_ = Precision::kF32;
  bool calibrating_ = false;
  uint64_t state_version_ = 0;
};

/// A module with the common one-in/one-out forward signature, enabling
/// generic composition via Sequential.
class UnaryModule : public Module {
 public:
  virtual autograd::Variable Forward(const autograd::Variable& x) = 0;
};

}  // namespace geotorch::nn

#endif  // GEOTORCH_NN_MODULE_H_
