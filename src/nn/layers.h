#ifndef GEOTORCH_NN_LAYERS_H_
#define GEOTORCH_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace geotorch::nn {

/// Fully connected layer: y = x @ W + b with x: (N, in), W: (in, out).
///
/// In eval mode with gradients disabled, SetPrecision(kBf16 / kInt8)
/// routes the matmul through the low-precision GEMMs (DESIGN.md §10):
/// bf16 keeps the weights stored at half width; int8 uses per-output-
/// channel symmetric weight scales and a per-tensor activation scale
/// (static when calibrated via SetCalibrating, else per-batch).
class Linear : public UnaryModule {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);
  autograd::Variable Forward(const autograd::Variable& x) override;

 protected:
  void OnPrecisionChanged() override;

 private:
  autograd::Variable weight_;
  autograd::Variable bias_;
  bool has_bias_;
  // Low-precision weight caches, rebuilt by SetPrecision from the
  // current f32 parameters (empty in f32 mode). Both hold the weight
  // pre-packed in the GEMM panel layout (Bf16PackedB / Int8PackedB) so
  // serving skips the per-call B pack; they are derived state and are
  // never persisted.
  std::vector<uint16_t> w_bf16_;
  std::vector<int8_t> w_q_;
  std::vector<float> w_scales_;
  float act_absmax_ = 0.0f;  // recorded during calibration; 0 = dynamic
};

/// 2-D convolution over NCHW input. Supports the same eval-time
/// low-precision modes as Linear (per-output-channel int8 weight
/// scales, i.e. per row of the flattened (F, C*KH*KW) weight matrix).
class Conv2d : public UnaryModule {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         Rng& rng, int64_t stride = 1, int64_t padding = 0,
         bool bias = true);
  autograd::Variable Forward(const autograd::Variable& x) override;

 protected:
  void OnPrecisionChanged() override;

 private:
  autograd::Variable weight_;
  autograd::Variable bias_;
  tensor::ConvSpec spec_;
  bool has_bias_;
  std::vector<uint16_t> w_bf16_;
  std::vector<int8_t> w_q_;
  std::vector<float> w_scales_;
  float act_absmax_ = 0.0f;
};

/// Transposed 2-D convolution (upsampling decoder layers).
class ConvTranspose2d : public UnaryModule {
 public:
  ConvTranspose2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
                  Rng& rng, int64_t stride = 1, int64_t padding = 0,
                  bool bias = true);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  autograd::Variable weight_;
  autograd::Variable bias_;
  tensor::ConvSpec spec_;
  bool has_bias_;
};

/// Batch normalization over the channel dim of NCHW input. Keeps
/// running statistics for eval mode.
class BatchNorm2d : public UnaryModule {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);
  autograd::Variable Forward(const autograd::Variable& x) override;

  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }

 private:
  autograd::Variable gamma_;
  autograd::Variable beta_;
  tensor::Tensor running_mean_;  // (1, C, 1, 1)
  tensor::Tensor running_var_;
  float eps_;
  float momentum_;
  int64_t channels_;
};

/// Inverted dropout; identity in eval mode.
class Dropout : public UnaryModule {
 public:
  explicit Dropout(float p, uint64_t seed = 17);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  float p_;
  Rng rng_;
};

/// Stateless activation layers (composable in Sequential).
class ReluLayer : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Relu(x);
  }
};
class SigmoidLayer : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Sigmoid(x);
  }
};
class LeakyReluLayer : public UnaryModule {
 public:
  explicit LeakyReluLayer(float slope = 0.01f) : slope_(slope) {}
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::LeakyRelu(x, slope_);
  }

 private:
  float slope_;
};
class TanhLayer : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Tanh(x);
  }
};

/// Max pooling with stride == kernel.
class MaxPool2d : public UnaryModule {
 public:
  explicit MaxPool2d(int64_t kernel) : kernel_(kernel) {}
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::MaxPool2d(x, kernel_);
  }

 private:
  int64_t kernel_;
};

/// Average pooling with stride == kernel.
class AvgPool2d : public UnaryModule {
 public:
  explicit AvgPool2d(int64_t kernel) : kernel_(kernel) {}
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::AvgPool2d(x, kernel_);
  }

 private:
  int64_t kernel_;
};

/// Nearest-neighbour 2x upsampling.
class Upsample2x : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::UpsampleNearest2x(x);
  }
};

/// Flattens (N, ...) to (N, rest).
class Flatten : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Reshape(x, {x.shape()[0], -1});
  }
};

/// Runs child modules in order. Owns them.
class Sequential : public UnaryModule {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<UnaryModule> layer);

  /// Convenience: emplace a layer of type T.
  template <typename T, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<T>(std::forward<Args>(args)...));
  }

  autograd::Variable Forward(const autograd::Variable& x) override;
  size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<UnaryModule>> layers_;
};

/// Plain (fully connected) LSTM cell over feature vectors. Used by the
/// STDN/DMVST-style hybrid models that attach an LSTM to per-timestep
/// CNN features (Section II-B of the paper).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    autograd::Variable h;  // (N, hidden)
    autograd::Variable c;  // (N, hidden)
  };

  /// Zero state for a batch of n.
  State InitialState(int64_t n) const;

  /// One timestep: x is (N, input_size).
  State Step(const autograd::Variable& x, const State& prev);

  int64_t hidden_size() const { return hidden_size_; }

 private:
  autograd::Variable w_x_;   // (input, 4*hidden)
  autograd::Variable w_h_;   // (hidden, 4*hidden)
  autograd::Variable bias_;  // (4*hidden)
  int64_t hidden_size_;
};

/// Convolutional LSTM cell (Shi et al., 2015): the recurrent unit of
/// the paper's ConvLSTM precipitation-nowcasting model. All gates are
/// convolutions; state h/c are (N, hidden, H, W).
class ConvLstmCell : public Module {
 public:
  ConvLstmCell(int64_t in_channels, int64_t hidden_channels, int64_t kernel,
               Rng& rng);

  struct State {
    autograd::Variable h;
    autograd::Variable c;
  };

  /// Zero-initialized state for a batch of n frames of h x w.
  State InitialState(int64_t n, int64_t h, int64_t w) const;

  /// One timestep: consumes x_t (N, in, H, W) and the previous state.
  State Step(const autograd::Variable& x, const State& prev);

  int64_t hidden_channels() const { return hidden_channels_; }

 private:
  autograd::Variable w_x_;  // (4*hidden, in, k, k)
  autograd::Variable w_h_;  // (4*hidden, hidden, k, k)
  autograd::Variable bias_;  // (4*hidden)
  tensor::ConvSpec spec_;
  int64_t hidden_channels_;
};

}  // namespace geotorch::nn

#endif  // GEOTORCH_NN_LAYERS_H_
