#ifndef GEOTORCH_NN_LAYERS_H_
#define GEOTORCH_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"
#include "tensor/gemm.h"

namespace geotorch::nn {

class BatchNorm2d;

/// True when `m` may take the fused eval path: eval mode, not
/// calibrating (calibration must observe the unfused per-layer
/// activations), no gradient graph being recorded, and the
/// GEOTORCH_FUSION kill switch not engaged. With fusion disabled every
/// forward takes exactly the pre-fusion code path.
bool FusedEvalEligible(const Module& m);

/// Fully connected layer: y = x @ W + b with x: (N, in), W: (in, out).
///
/// In eval mode with gradients disabled, SetPrecision(kBf16 / kInt8)
/// routes the matmul through the low-precision GEMMs (DESIGN.md §10):
/// bf16 keeps the weights stored at half width; int8 uses per-output-
/// channel symmetric weight scales and a per-tensor activation scale
/// (static when calibrated via SetCalibrating, else per-batch).
class Linear : public UnaryModule {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);
  autograd::Variable Forward(const autograd::Variable& x) override;

  /// Eval-only fused forward: bias and the given activation run as GEMM
  /// epilogue passes instead of separate full-tensor ops. Bitwise
  /// identical to Forward followed by the matching activation op (the
  /// epilogue applies the same per-element formulas in the same order).
  /// Caller must have checked FusedEvalEligible.
  autograd::Variable ForwardFusedEval(const autograd::Variable& x,
                                      tensor::EpilogueAct act,
                                      float leaky_slope = 0.01f);

 protected:
  void OnPrecisionChanged() override;

 private:
  autograd::Variable weight_;
  autograd::Variable bias_;
  bool has_bias_;
  // Low-precision weight caches, rebuilt by SetPrecision from the
  // current f32 parameters (empty in f32 mode). Both hold the weight
  // pre-packed in the GEMM panel layout (Bf16PackedB / Int8PackedB) so
  // serving skips the per-call B pack; they are derived state and are
  // never persisted.
  std::vector<uint16_t> w_bf16_;
  std::vector<int8_t> w_q_;
  std::vector<float> w_scales_;
  float act_absmax_ = 0.0f;  // recorded during calibration; 0 = dynamic
};

/// 2-D convolution over NCHW input. Supports the same eval-time
/// low-precision modes as Linear (per-output-channel int8 weight
/// scales, i.e. per row of the flattened (F, C*KH*KW) weight matrix).
class Conv2d : public UnaryModule {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         Rng& rng, int64_t stride = 1, int64_t padding = 0,
         bool bias = true);
  autograd::Variable Forward(const autograd::Variable& x) override;

  /// Eval-only fused forward. When `bn` is non-null its running
  /// statistics and affine are folded into the convolution weights and
  /// bias (W' = W·scale_f, b' = b·scale_f + shift_f per output channel)
  /// from a cached snapshot keyed on both modules' state versions; low
  /// precision quantizes the folded f32 weights, never the other way
  /// round. The activation runs as a GEMM epilogue. Without `bn` the
  /// result is bitwise identical to Forward plus the activation op;
  /// with `bn` it matches conv→BN→act within a small relative error
  /// (the fold reassociates the per-channel multiplies).
  /// Caller must have checked FusedEvalEligible.
  autograd::Variable ForwardFusedEval(const autograd::Variable& x,
                                      const BatchNorm2d* bn,
                                      tensor::EpilogueAct act,
                                      float leaky_slope = 0.01f);

 protected:
  void OnPrecisionChanged() override;

 private:
  /// Folded-weight snapshot for conv+BN fusion. Rebuilt lazily under
  /// fold_mu_ whenever either module's state version moved or the
  /// precision changed; safe to build lazily from concurrent forwards
  /// because the first builder holds the mutex and later readers see a
  /// version match. Mutating the modules while forwards are in flight
  /// is excluded by the serving contract (copy-on-swap hot reload).
  struct FoldedCache {
    const BatchNorm2d* bn = nullptr;
    uint64_t conv_version = 0;
    uint64_t bn_version = 0;
    Precision precision = Precision::kF32;
    bool valid = false;
    tensor::Tensor w;  // folded f32 weight, same shape as weight_
    tensor::Tensor b;  // folded f32 bias (F)
    std::vector<uint16_t> w_bf16;
    std::vector<int8_t> w_q;
    std::vector<float> w_scales;
  };
  void RefreshFoldedCache(const BatchNorm2d& bn, Precision prec);

  autograd::Variable weight_;
  autograd::Variable bias_;
  tensor::ConvSpec spec_;
  bool has_bias_;
  std::vector<uint16_t> w_bf16_;
  std::vector<int8_t> w_q_;
  std::vector<float> w_scales_;
  float act_absmax_ = 0.0f;
  std::mutex fold_mu_;
  FoldedCache fold_;
};

/// Transposed 2-D convolution (upsampling decoder layers).
class ConvTranspose2d : public UnaryModule {
 public:
  ConvTranspose2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
                  Rng& rng, int64_t stride = 1, int64_t padding = 0,
                  bool bias = true);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  autograd::Variable weight_;
  autograd::Variable bias_;
  tensor::ConvSpec spec_;
  bool has_bias_;
};

/// Batch normalization over the channel dim of NCHW input. Keeps
/// running statistics for eval mode.
class BatchNorm2d : public UnaryModule {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);
  autograd::Variable Forward(const autograd::Variable& x) override;

  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }
  int64_t channels() const { return channels_; }

  /// The per-channel affine equivalent of this layer's eval transform:
  /// y_c = scale_c · x_c + shift_c with scale_c = γ_c·inv_std_c and
  /// shift_c = β_c − μ_c·scale_c. This is what a preceding Conv2d folds
  /// into its weights. Served from the same cached inv_std as the
  /// unfused eval forward, so both paths normalize with identical
  /// per-channel constants.
  void FoldedAffine(std::vector<float>* scale,
                    std::vector<float>* shift) const;

 private:
  /// (Re)computes the cached eval-path constants — the inv_std tensor
  /// the unfused eval forward multiplies by, and the folded per-channel
  /// affine — iff the state version moved since the last build. The
  /// cached inv_std is produced by the exact op sequence the uncached
  /// eval path used (PowScalar(AddScalar(var, eps), -0.5)), keeping the
  /// unfused eval output bitwise unchanged.
  void RefreshEvalCache() const;

  autograd::Variable gamma_;
  autograd::Variable beta_;
  tensor::Tensor running_mean_;  // (1, C, 1, 1)
  tensor::Tensor running_var_;
  float eps_;
  float momentum_;
  int64_t channels_;
  mutable std::mutex cache_mu_;
  mutable uint64_t cache_version_ = 0;
  mutable bool cache_valid_ = false;
  mutable tensor::Tensor inv_std_;  // (1, C, 1, 1)
  mutable std::vector<float> fold_scale_;
  mutable std::vector<float> fold_shift_;
};

/// Inverted dropout; identity in eval mode.
class Dropout : public UnaryModule {
 public:
  explicit Dropout(float p, uint64_t seed = 17);
  autograd::Variable Forward(const autograd::Variable& x) override;

 private:
  float p_;
  Rng rng_;
};

/// Stateless activation layers (composable in Sequential).
class ReluLayer : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Relu(x);
  }
};
class SigmoidLayer : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Sigmoid(x);
  }
};
class LeakyReluLayer : public UnaryModule {
 public:
  explicit LeakyReluLayer(float slope = 0.01f) : slope_(slope) {}
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::LeakyRelu(x, slope_);
  }
  float slope() const { return slope_; }

 private:
  float slope_;
};
class TanhLayer : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Tanh(x);
  }
};

/// Max pooling with stride == kernel.
class MaxPool2d : public UnaryModule {
 public:
  explicit MaxPool2d(int64_t kernel) : kernel_(kernel) {}
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::MaxPool2d(x, kernel_);
  }

 private:
  int64_t kernel_;
};

/// Average pooling with stride == kernel.
class AvgPool2d : public UnaryModule {
 public:
  explicit AvgPool2d(int64_t kernel) : kernel_(kernel) {}
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::AvgPool2d(x, kernel_);
  }

 private:
  int64_t kernel_;
};

/// Nearest-neighbour 2x upsampling.
class Upsample2x : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::UpsampleNearest2x(x);
  }
};

/// Flattens (N, ...) to (N, rest).
class Flatten : public UnaryModule {
 public:
  autograd::Variable Forward(const autograd::Variable& x) override {
    return autograd::Reshape(x, {x.shape()[0], -1});
  }
};

/// Runs child modules in order. Owns them.
class Sequential : public UnaryModule {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<UnaryModule> layer);

  /// Convenience: emplace a layer of type T.
  template <typename T, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<T>(std::forward<Args>(args)...));
  }

  autograd::Variable Forward(const autograd::Variable& x) override;
  size_t size() const { return layers_.size(); }

 private:
  /// Fused eval walk: scans for Conv2d→[BatchNorm2d]→[activation] and
  /// Linear→[activation] runs and dispatches each as one fused call;
  /// anything else forwards layer by layer as before.
  autograd::Variable ForwardFusedEval(const autograd::Variable& x);

  std::vector<std::unique_ptr<UnaryModule>> layers_;
};

/// Plain (fully connected) LSTM cell over feature vectors. Used by the
/// STDN/DMVST-style hybrid models that attach an LSTM to per-timestep
/// CNN features (Section II-B of the paper).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    autograd::Variable h;  // (N, hidden)
    autograd::Variable c;  // (N, hidden)
  };

  /// Zero state for a batch of n.
  State InitialState(int64_t n) const;

  /// One timestep: x is (N, input_size).
  State Step(const autograd::Variable& x, const State& prev);

  int64_t hidden_size() const { return hidden_size_; }

 private:
  autograd::Variable w_x_;   // (input, 4*hidden)
  autograd::Variable w_h_;   // (hidden, 4*hidden)
  autograd::Variable bias_;  // (4*hidden)
  int64_t hidden_size_;
};

/// Convolutional LSTM cell (Shi et al., 2015): the recurrent unit of
/// the paper's ConvLSTM precipitation-nowcasting model. All gates are
/// convolutions; state h/c are (N, hidden, H, W).
class ConvLstmCell : public Module {
 public:
  ConvLstmCell(int64_t in_channels, int64_t hidden_channels, int64_t kernel,
               Rng& rng);

  struct State {
    autograd::Variable h;
    autograd::Variable c;
  };

  /// Zero-initialized state for a batch of n frames of h x w.
  State InitialState(int64_t n, int64_t h, int64_t w) const;

  /// One timestep: consumes x_t (N, in, H, W) and the previous state.
  State Step(const autograd::Variable& x, const State& prev);

  int64_t hidden_channels() const { return hidden_channels_; }

 private:
  autograd::Variable w_x_;  // (4*hidden, in, k, k)
  autograd::Variable w_h_;  // (4*hidden, hidden, k, k)
  autograd::Variable bias_;  // (4*hidden)
  tensor::ConvSpec spec_;
  int64_t hidden_channels_;
};

}  // namespace geotorch::nn

#endif  // GEOTORCH_NN_LAYERS_H_
