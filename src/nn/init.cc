#include "nn/init.h"

#include <cmath>

#include "core/check.h"

namespace geotorch::nn {

tensor::Tensor KaimingUniform(tensor::Shape shape, int64_t fan_in, Rng& rng) {
  GEO_CHECK_GT(fan_in, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  return tensor::Tensor::Rand(std::move(shape), rng, -bound, bound);
}

tensor::Tensor XavierUniform(tensor::Shape shape, int64_t fan_in,
                             int64_t fan_out, Rng& rng) {
  GEO_CHECK(fan_in > 0 && fan_out > 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::Rand(std::move(shape), rng, -bound, bound);
}

int64_t ConvFanIn(const tensor::Shape& weight_shape) {
  GEO_CHECK_GE(weight_shape.size(), 2u);
  int64_t fan = 1;
  for (size_t i = 1; i < weight_shape.size(); ++i) fan *= weight_shape[i];
  return fan;
}

}  // namespace geotorch::nn
