#include "spatial/strtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/check.h"

namespace geotorch::spatial {

StrTree::StrTree(std::vector<Entry> entries, int node_capacity)
    : entries_(std::move(entries)), node_capacity_(node_capacity) {
  GEO_CHECK_GE(node_capacity_, 2);
  num_entries_ = static_cast<int64_t>(entries_.size());
  if (entries_.empty()) return;
  std::vector<int32_t> ids(entries_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int32_t>(i);
  root_ = Build(ids, 0);
}

int32_t StrTree::Build(std::vector<int32_t>& entry_ids, int level) {
  height_ = std::max(height_, level + 1);
  const int64_t n = static_cast<int64_t>(entry_ids.size());
  if (n <= node_capacity_) {
    Node leaf;
    leaf.is_leaf = true;
    leaf.children = entry_ids;
    for (int32_t e : entry_ids) {
      leaf.envelope.ExpandToInclude(entries_[e].envelope);
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  // STR: S = ceil(sqrt(#slices)), sort by center x, slice, sort each
  // slice by center y, pack runs of node_capacity.
  const int64_t num_leaves = (n + node_capacity_ - 1) / node_capacity_;
  const int64_t num_slices =
      static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const int64_t slice_size =
      (n + num_slices - 1) / num_slices;

  std::sort(entry_ids.begin(), entry_ids.end(),
            [this](int32_t a, int32_t b) {
              return entries_[a].envelope.center().x <
                     entries_[b].envelope.center().x;
            });

  std::vector<int32_t> child_nodes;
  for (int64_t s = 0; s < num_slices; ++s) {
    const int64_t begin = s * slice_size;
    const int64_t end = std::min<int64_t>(n, begin + slice_size);
    if (begin >= end) break;
    std::sort(entry_ids.begin() + begin, entry_ids.begin() + end,
              [this](int32_t a, int32_t b) {
                return entries_[a].envelope.center().y <
                       entries_[b].envelope.center().y;
              });
    for (int64_t b = begin; b < end; b += node_capacity_) {
      const int64_t leaf_end = std::min<int64_t>(end, b + node_capacity_);
      Node leaf;
      leaf.is_leaf = true;
      for (int64_t i = b; i < leaf_end; ++i) {
        leaf.children.push_back(entry_ids[i]);
        leaf.envelope.ExpandToInclude(entries_[entry_ids[i]].envelope);
      }
      nodes_.push_back(std::move(leaf));
      child_nodes.push_back(static_cast<int32_t>(nodes_.size() - 1));
    }
  }

  // Pack child nodes upward until a single root remains.
  int levels = level + 2;
  while (static_cast<int>(child_nodes.size()) > 1) {
    std::vector<int32_t> parents;
    for (size_t b = 0; b < child_nodes.size();
         b += static_cast<size_t>(node_capacity_)) {
      const size_t end =
          std::min(child_nodes.size(), b + static_cast<size_t>(node_capacity_));
      Node parent;
      parent.is_leaf = false;
      for (size_t i = b; i < end; ++i) {
        parent.children.push_back(child_nodes[i]);
        parent.envelope.ExpandToInclude(nodes_[child_nodes[i]].envelope);
      }
      nodes_.push_back(std::move(parent));
      parents.push_back(static_cast<int32_t>(nodes_.size() - 1));
    }
    child_nodes = std::move(parents);
    ++levels;
  }
  height_ = std::max(height_, levels);
  return child_nodes[0];
}

namespace {

// Squared distance from a point to an envelope (0 when inside).
double EnvelopeDist2(const Envelope& e, const Point& p) {
  const double dx = std::max({e.min_x() - p.x, 0.0, p.x - e.max_x()});
  const double dy = std::max({e.min_y() - p.y, 0.0, p.y - e.max_y()});
  return dx * dx + dy * dy;
}

}  // namespace

std::vector<int64_t> StrTree::Nearest(const Point& p, int k) const {
  std::vector<int64_t> out;
  if (nodes_.empty() || k <= 0) return out;
  // Best-first search: frontier of (dist2, is_entry, index).
  struct Item {
    double dist2;
    bool is_entry;
    int32_t index;
    bool operator>(const Item& other) const { return dist2 > other.dist2; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier;
  frontier.push({EnvelopeDist2(nodes_[root_].envelope, p), false, root_});
  while (!frontier.empty() && static_cast<int>(out.size()) < k) {
    Item item = frontier.top();
    frontier.pop();
    if (item.is_entry) {
      out.push_back(entries_[item.index].id);
      continue;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (int32_t e : node.children) {
        frontier.push({EnvelopeDist2(entries_[e].envelope, p), true, e});
      }
    } else {
      for (int32_t c : node.children) {
        frontier.push({EnvelopeDist2(nodes_[c].envelope, p), false, c});
      }
    }
  }
  return out;
}

std::vector<int64_t> StrTree::Query(const Envelope& query) const {
  std::vector<int64_t> out;
  Visit(query, [&out](int64_t id) { out.push_back(id); });
  return out;
}

}  // namespace geotorch::spatial
