#include "spatial/strtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <utility>

#include "core/check.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "spatial/config.h"

namespace geotorch::spatial {
namespace {

// Below this many elements a parallel sort is pure overhead.
constexpr int64_t kParallelSortMin = 1 << 13;

/// Sorts `data[0, n)` with `less`, fanning the initial chunk sorts and
/// the pairwise merge passes out over `pool` (serial when pool is
/// null). `less` must be a strict total order: the sorted permutation
/// is then unique, so the result cannot depend on the chunking or on
/// how many workers the pool has.
template <typename Less>
void SortIds(int32_t* data, int64_t n, const Less& less, ThreadPool* pool) {
  if (pool == nullptr || n < kParallelSortMin) {
    std::sort(data, data + n, less);
    return;
  }
  const int64_t chunks =
      std::min<int64_t>(pool->num_threads(), (n + kParallelSortMin - 1) /
                                                 kParallelSortMin);
  if (chunks <= 1) {
    std::sort(data, data + n, less);
    return;
  }
  const int64_t per = (n + chunks - 1) / chunks;
  std::vector<int64_t> bounds;
  for (int64_t b = 0; b < n; b += per) bounds.push_back(b);
  bounds.push_back(n);
  const int64_t runs = static_cast<int64_t>(bounds.size()) - 1;
  pool->ParallelFor(runs, [&](int64_t r) {
    std::sort(data + bounds[r], data + bounds[r + 1], less);
  });

  // Pairwise merge passes, ping-ponging between `data` and a scratch
  // buffer; each pass halves the number of sorted runs.
  std::vector<int32_t> scratch(n);
  int32_t* src = data;
  int32_t* dst = scratch.data();
  while (static_cast<int64_t>(bounds.size()) - 1 > 1) {
    const int64_t in_runs = static_cast<int64_t>(bounds.size()) - 1;
    const int64_t pairs = in_runs / 2;
    std::vector<int64_t> next_bounds;
    for (int64_t p = 0; p <= pairs; ++p) {
      next_bounds.push_back(bounds[std::min<int64_t>(2 * p, in_runs)]);
    }
    if (next_bounds.back() != n) next_bounds.push_back(n);
    pool->ParallelFor(pairs, [&](int64_t p) {
      std::merge(src + bounds[2 * p], src + bounds[2 * p + 1],
                 src + bounds[2 * p + 1], src + bounds[2 * p + 2],
                 dst + bounds[2 * p], less);
    });
    if (in_runs % 2 == 1) {  // odd run out: carried over unmerged
      std::copy(src + bounds[in_runs - 1], src + bounds[in_runs],
                dst + bounds[in_runs - 1]);
    }
    bounds = std::move(next_bounds);
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

}  // namespace

StrTree::StrTree(std::vector<Entry> entries, int node_capacity)
    : StrTree(std::move(entries), node_capacity,
              BuildOptions{ParallelSpatialEnabled(), nullptr}) {}

StrTree::StrTree(std::vector<Entry> entries, int node_capacity,
                 const BuildOptions& options)
    : entries_(std::move(entries)), node_capacity_(node_capacity) {
  GEO_CHECK_GE(node_capacity_, 2);
  num_entries_ = static_cast<int64_t>(entries_.size());
  if (entries_.empty()) return;
  Build(options);
}

void StrTree::Build(const BuildOptions& options) {
  GEO_OBS_SPAN(build_span, "spatial.build");
  GEO_OBS_COUNT("spatial.build_entries", num_entries_);
  ThreadPool* pool = nullptr;
  if (options.parallel && ParallelSpatialEnabled()) {
    pool = options.pool != nullptr ? options.pool : &ThreadPool::Global();
    if (pool->num_threads() <= 1) pool = nullptr;
  }
  const int64_t n = num_entries_;
  const int64_t cap = node_capacity_;

  if (n <= cap) {
    Node leaf;
    leaf.is_leaf = true;
    for (int64_t i = 0; i < n; ++i) {
      leaf.children.push_back(static_cast<int32_t>(i));
      leaf.envelope.ExpandToInclude(entries_[i].envelope);
    }
    nodes_.push_back(std::move(leaf));
    root_ = 0;
    height_ = 1;
    return;
  }

  // STR: sort by center x, cut into ~sqrt(#leaves) vertical slices,
  // sort each slice by center y, pack runs of node_capacity into
  // leaves. Ties order by entry index, making every sort's output a
  // unique permutation — the hinge of serial/parallel identity.
  std::vector<int32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  SortIds(ids.data(), n,
          [this](int32_t a, int32_t b) {
            const double ax = entries_[a].envelope.center().x;
            const double bx = entries_[b].envelope.center().x;
            if (ax != bx) return ax < bx;
            return a < b;
          },
          pool);

  const int64_t num_leaves = (n + cap - 1) / cap;
  const int64_t num_slices =
      static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const int64_t slice_size = (n + num_slices - 1) / num_slices;
  const auto y_less = [this](int32_t a, int32_t b) {
    const double ay = entries_[a].envelope.center().y;
    const double by = entries_[b].envelope.center().y;
    if (ay != by) return ay < by;
    return a < b;
  };
  const auto sort_slice = [&](int64_t s) {
    const int64_t begin = s * slice_size;
    const int64_t end = std::min<int64_t>(n, begin + slice_size);
    if (begin < end) {
      std::sort(ids.begin() + begin, ids.begin() + end, y_less);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_slices, sort_slice);
  } else {
    for (int64_t s = 0; s < num_slices; ++s) sort_slice(s);
  }

  // Leaf boundaries are a pure function of (n, cap): runs of `cap`
  // within each slice.
  std::vector<std::pair<int64_t, int64_t>> leaf_ranges;
  leaf_ranges.reserve(num_leaves);
  for (int64_t s = 0; s < num_slices; ++s) {
    const int64_t begin = s * slice_size;
    const int64_t end = std::min<int64_t>(n, begin + slice_size);
    for (int64_t b = begin; b < end; b += cap) {
      leaf_ranges.emplace_back(b, std::min<int64_t>(end, b + cap));
    }
  }
  const int64_t leaf_count = static_cast<int64_t>(leaf_ranges.size());
  nodes_.resize(leaf_count);
  const auto fill_leaf = [&](int64_t i) {
    Node& leaf = nodes_[i];
    leaf.is_leaf = true;
    for (int64_t r = leaf_ranges[i].first; r < leaf_ranges[i].second; ++r) {
      leaf.children.push_back(ids[r]);
      leaf.envelope.ExpandToInclude(entries_[ids[r]].envelope);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(leaf_count, fill_leaf);
  } else {
    for (int64_t i = 0; i < leaf_count; ++i) fill_leaf(i);
  }

  // Pack upward level by level; every parent slot is independent, so
  // each level fans out over the pool after a single resize.
  int64_t level_begin = 0;
  int64_t level_count = leaf_count;
  height_ = 1;
  while (level_count > 1) {
    const int64_t parent_count = (level_count + cap - 1) / cap;
    const int64_t base = static_cast<int64_t>(nodes_.size());
    nodes_.resize(base + parent_count);
    const auto fill_parent = [&](int64_t p) {
      Node& parent = nodes_[base + p];
      parent.is_leaf = false;
      const int64_t cb = level_begin + p * cap;
      const int64_t ce =
          std::min<int64_t>(level_begin + level_count, cb + cap);
      for (int64_t c = cb; c < ce; ++c) {
        parent.children.push_back(static_cast<int32_t>(c));
        parent.envelope.ExpandToInclude(nodes_[c].envelope);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(parent_count, fill_parent);
    } else {
      for (int64_t p = 0; p < parent_count; ++p) fill_parent(p);
    }
    level_begin = base;
    level_count = parent_count;
    ++height_;
  }
  root_ = static_cast<int32_t>(level_begin);
}

namespace {

bool SameEnvelope(const Envelope& a, const Envelope& b) {
  return a.min_x() == b.min_x() && a.min_y() == b.min_y() &&
         a.max_x() == b.max_x() && a.max_y() == b.max_y();
}

// Squared distance from a point to an envelope (0 when inside).
double EnvelopeDist2(const Envelope& e, const Point& p) {
  const double dx = std::max({e.min_x() - p.x, 0.0, p.x - e.max_x()});
  const double dy = std::max({e.min_y() - p.y, 0.0, p.y - e.max_y()});
  return dx * dx + dy * dy;
}

}  // namespace

bool StrTree::IdenticalTo(const StrTree& other) const {
  if (num_entries_ != other.num_entries_ ||
      node_capacity_ != other.node_capacity_ || root_ != other.root_ ||
      height_ != other.height_ || nodes_.size() != other.nodes_.size()) {
    return false;
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id != other.entries_[i].id ||
        !SameEnvelope(entries_[i].envelope, other.entries_[i].envelope)) {
      return false;
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_leaf != other.nodes_[i].is_leaf ||
        nodes_[i].children != other.nodes_[i].children ||
        !SameEnvelope(nodes_[i].envelope, other.nodes_[i].envelope)) {
      return false;
    }
  }
  return true;
}

std::vector<int64_t> StrTree::Nearest(const Point& p, int k) const {
  std::vector<int64_t> out;
  if (nodes_.empty() || k <= 0) return out;
  // Best-first search: frontier of (dist2, is_entry, index).
  struct Item {
    double dist2;
    bool is_entry;
    int32_t index;
    bool operator>(const Item& other) const { return dist2 > other.dist2; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier;
  frontier.push({EnvelopeDist2(nodes_[root_].envelope, p), false, root_});
  while (!frontier.empty() && static_cast<int>(out.size()) < k) {
    Item item = frontier.top();
    frontier.pop();
    if (item.is_entry) {
      out.push_back(entries_[item.index].id);
      continue;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (int32_t e : node.children) {
        frontier.push({EnvelopeDist2(entries_[e].envelope, p), true, e});
      }
    } else {
      for (int32_t c : node.children) {
        frontier.push({EnvelopeDist2(nodes_[c].envelope, p), false, c});
      }
    }
  }
  return out;
}

std::vector<int64_t> StrTree::Query(const Envelope& query) const {
  std::vector<int64_t> out;
  Visit(query, [&out](int64_t id) { out.push_back(id); });
  return out;
}

}  // namespace geotorch::spatial
