#ifndef GEOTORCH_SPATIAL_CONFIG_H_
#define GEOTORCH_SPATIAL_CONFIG_H_

namespace geotorch::spatial {

/// Runtime kill switch for the parallel spatial engine (threaded
/// STR-tree bulk-load and partition-parallel join probes). Mirrors
/// GEOTORCH_POOL: set GEOTORCH_SPATIAL_PARALLEL to "0", "off", or
/// "false" in the environment to force every build/probe onto the
/// calling thread. Parallel and serial execution produce identical
/// results (DESIGN.md §8); the switch exists for debugging and for
/// pinning benchmark baselines.
bool ParallelSpatialEnabled();

/// Overrides the compiled-in default (on unless the environment says
/// otherwise). Used by tests and benches; not thread-safe with respect
/// to concurrently starting joins.
void SetParallelSpatialEnabled(bool on);

}  // namespace geotorch::spatial

#endif  // GEOTORCH_SPATIAL_CONFIG_H_
