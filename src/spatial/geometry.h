#ifndef GEOTORCH_SPATIAL_GEOMETRY_H_
#define GEOTORCH_SPATIAL_GEOMETRY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace geotorch::spatial {

/// A 2-D point. For geographic data x is longitude, y is latitude.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Axis-aligned bounding box.
class Envelope {
 public:
  Envelope() = default;
  Envelope(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  static Envelope Empty();
  bool IsEmpty() const { return min_x_ > max_x_ || min_y_ > max_y_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }
  double width() const { return max_x_ - min_x_; }
  double height() const { return max_y_ - min_y_; }
  Point center() const {
    return Point{(min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0};
  }

  /// Closed containment (boundary points are inside).
  bool Contains(const Point& p) const {
    return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
  }
  bool Contains(const Envelope& other) const {
    return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
           other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
  }
  bool Intersects(const Envelope& other) const {
    return !(other.min_x_ > max_x_ || other.max_x_ < min_x_ ||
             other.min_y_ > max_y_ || other.max_y_ < min_y_);
  }

  /// Grows to include `p` / `other`.
  void ExpandToInclude(const Point& p);
  void ExpandToInclude(const Envelope& other);

 private:
  double min_x_ = 1.0;
  double min_y_ = 1.0;
  double max_x_ = -1.0;  // empty by default
  double max_y_ = -1.0;
};

/// A simple polygon (single outer ring, implicitly closed).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> ring);

  const std::vector<Point>& ring() const { return ring_; }
  const Envelope& bounds() const { return bounds_; }

  /// Even-odd (ray casting) point-in-polygon test, with an envelope
  /// pre-check.
  bool Contains(const Point& p) const;

  /// Area by the shoelace formula (absolute value).
  double Area() const;

  /// Axis-aligned rectangle as a polygon.
  static Polygon FromEnvelope(const Envelope& env);

 private:
  std::vector<Point> ring_;
  Envelope bounds_;
};

/// Planar Euclidean distance.
double EuclideanDistance(const Point& a, const Point& b);

/// Great-circle distance in meters between two lon/lat points
/// (haversine, spherical Earth R=6371km). Used to size NYC-scale grid
/// cells realistically in the trip generator.
double HaversineMeters(const Point& a, const Point& b);

}  // namespace geotorch::spatial

#endif  // GEOTORCH_SPATIAL_GEOMETRY_H_
