#include "spatial/geometry.h"

#include <cmath>

#include "core/check.h"

namespace geotorch::spatial {

Envelope Envelope::Empty() { return Envelope(); }

void Envelope::ExpandToInclude(const Point& p) {
  if (IsEmpty()) {
    min_x_ = max_x_ = p.x;
    min_y_ = max_y_ = p.y;
    return;
  }
  min_x_ = std::min(min_x_, p.x);
  max_x_ = std::max(max_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_y_ = std::max(max_y_, p.y);
}

void Envelope::ExpandToInclude(const Envelope& other) {
  if (other.IsEmpty()) return;
  ExpandToInclude(Point{other.min_x_, other.min_y_});
  ExpandToInclude(Point{other.max_x_, other.max_y_});
}

Polygon::Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {
  GEO_CHECK_GE(ring_.size(), 3u) << "polygon needs at least 3 vertices";
  for (const Point& p : ring_) bounds_.ExpandToInclude(p);
}

bool Polygon::Contains(const Point& p) const {
  if (!bounds_.Contains(p)) return false;
  bool inside = false;
  const size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring_[i];
    const Point& b = ring_[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

double Polygon::Area() const {
  double twice = 0.0;
  const size_t n = ring_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    twice += (ring_[j].x + ring_[i].x) * (ring_[j].y - ring_[i].y);
  }
  return std::fabs(twice) / 2.0;
}

Polygon Polygon::FromEnvelope(const Envelope& env) {
  return Polygon({{env.min_x(), env.min_y()},
                  {env.max_x(), env.min_y()},
                  {env.max_x(), env.max_y()},
                  {env.min_x(), env.max_y()}});
}

double EuclideanDistance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double HaversineMeters(const Point& a, const Point& b) {
  constexpr double kEarthRadiusM = 6371000.0;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.y * kDegToRad;
  const double lat2 = b.y * kDegToRad;
  const double dlat = (b.y - a.y) * kDegToRad;
  const double dlon = (b.x - a.x) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::sqrt(h));
}

}  // namespace geotorch::spatial
