#include "spatial/join.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/check.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "spatial/config.h"

namespace geotorch::spatial {
namespace {

JoinStrategy ParseJoinStrategyEnv() {
  const char* env = std::getenv("GEOTORCH_JOIN");
  if (env == nullptr) return JoinStrategy::kAuto;
  if (std::strcmp(env, "nested") == 0) return JoinStrategy::kNestedLoop;
  if (std::strcmp(env, "strtree") == 0 || std::strcmp(env, "tree") == 0) {
    return JoinStrategy::kStrTree;
  }
  if (std::strcmp(env, "grid") == 0) return JoinStrategy::kGridHash;
  return JoinStrategy::kAuto;
}

/// Runs `probe(i, buffer)` for every probe index in [0, n), fanning
/// contiguous index chunks out across the pool with one result buffer
/// per chunk, then concatenating the buffers in chunk order. Within a
/// chunk the probe loop is the serial loop; chunks partition [0, n) in
/// order — so the merged output equals the serial output row for row,
/// for any chunk count and any pool size.
template <typename Pair, typename ProbeFn>
std::vector<Pair> RunProbes(int64_t n, const JoinOptions& options,
                            const ProbeFn& probe) {
  GEO_OBS_SPAN(probe_span, "spatial.probe");
  GEO_OBS_COUNT("spatial.probes", n);
  std::vector<Pair> out;
  ThreadPool* pool = nullptr;
  if (options.parallel && ParallelSpatialEnabled() && n > 0) {
    pool = options.pool != nullptr ? options.pool : &ThreadPool::Global();
    if (pool->num_threads() <= 1) pool = nullptr;
  }
  if (pool == nullptr) {
    for (int64_t i = 0; i < n; ++i) probe(i, out);
    return out;
  }
  const int64_t chunks =
      std::min<int64_t>(n, int64_t{4} * pool->num_threads());
  const int64_t per = (n + chunks - 1) / chunks;
  std::vector<std::vector<Pair>> buffers(chunks);
  pool->ParallelFor(chunks, [&](int64_t c) {
    const int64_t begin = c * per;
    const int64_t end = std::min<int64_t>(n, begin + per);
    std::vector<Pair>& buffer = buffers[c];
    for (int64_t i = begin; i < end; ++i) probe(i, buffer);
  });
  std::vector<int64_t> offsets(chunks + 1, 0);
  for (int64_t c = 0; c < chunks; ++c) {
    offsets[c + 1] = offsets[c] + static_cast<int64_t>(buffers[c].size());
  }
  out.resize(offsets[chunks]);
  pool->ParallelFor(chunks, [&](int64_t c) {
    std::copy(buffers[c].begin(), buffers[c].end(),
              out.begin() + offsets[c]);
  });
  GEO_OBS_COUNT("spatial.merge_bytes",
                offsets[chunks] * static_cast<int64_t>(sizeof(Pair)));
  return out;
}

}  // namespace

JoinStrategy DefaultJoinStrategy() {
  static const JoinStrategy strategy = ParseJoinStrategyEnv();
  return strategy;
}

std::vector<JoinPair> PointInPolygonJoin(const std::vector<Point>& points,
                                         const std::vector<Polygon>& polygons,
                                         const JoinOptions& options,
                                         const GridPartitioner* grid) {
  JoinStrategy strategy = options.strategy;
  if (strategy == JoinStrategy::kAuto) strategy = DefaultJoinStrategy();
  if (strategy == JoinStrategy::kAuto) {
    strategy =
        grid != nullptr ? JoinStrategy::kGridHash : JoinStrategy::kStrTree;
  }
  const int64_t num_points = static_cast<int64_t>(points.size());
  switch (strategy) {
    case JoinStrategy::kNestedLoop: {
      return RunProbes<JoinPair>(
          num_points, options,
          [&points, &polygons](int64_t pi, std::vector<JoinPair>& out) {
            for (int64_t gi = 0; gi < static_cast<int64_t>(polygons.size());
                 ++gi) {
              if (polygons[gi].Contains(points[pi])) out.push_back({pi, gi});
            }
          });
    }
    case JoinStrategy::kStrTree: {
      std::vector<StrTree::Entry> entries;
      entries.reserve(polygons.size());
      for (int64_t gi = 0; gi < static_cast<int64_t>(polygons.size()); ++gi) {
        entries.push_back({polygons[gi].bounds(), gi});
      }
      StrTree tree(std::move(entries), 10,
                   StrTree::BuildOptions{options.parallel, options.pool});
      return RunProbes<JoinPair>(
          num_points, options,
          [&points, &polygons, &tree](int64_t pi,
                                      std::vector<JoinPair>& out) {
            const Point& p = points[pi];
            Envelope probe(p.x, p.y, p.x, p.y);
            tree.Visit(probe, [&](int64_t gi) {
              if (polygons[gi].Contains(p)) out.push_back({pi, gi});
            });
          });
    }
    case JoinStrategy::kGridHash: {
      GEO_CHECK(grid != nullptr) << "kGridHash requires the grid partitioner";
      GEO_CHECK_EQ(static_cast<int64_t>(polygons.size()), grid->NumCells());
      std::vector<JoinPair> out = RunProbes<JoinPair>(
          num_points, options,
          [&points, grid](int64_t pi, std::vector<JoinPair>& out) {
            auto cell = grid->CellOf(points[pi]);
            if (cell.has_value()) out.push_back({pi, *cell});
          });
      GEO_OBS_COUNT("spatial.fastpath_hits",
                    static_cast<int64_t>(out.size()));
      return out;
    }
    case JoinStrategy::kAuto:
      break;  // resolved above
  }
  GEO_CHECK(false) << "unreachable join strategy";
  return {};
}

std::vector<JoinPair> PointInPolygonJoin(const std::vector<Point>& points,
                                         const std::vector<Polygon>& polygons,
                                         JoinStrategy strategy,
                                         const GridPartitioner* grid) {
  JoinOptions options;
  options.strategy = strategy;
  return PointInPolygonJoin(points, polygons, options, grid);
}

std::vector<int64_t> AssignPointsToCells(std::span<const Point> points,
                                         const GridPartitioner& grid,
                                         bool parallel, ThreadPool* pool) {
  GEO_OBS_SPAN(probe_span, "spatial.probe");
  const int64_t n = static_cast<int64_t>(points.size());
  GEO_OBS_COUNT("spatial.probes", n);
  std::vector<int64_t> cells(points.size(), -1);
  const auto assign_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      auto cell = grid.CellOf(points[i]);
      if (cell.has_value()) cells[i] = *cell;
    }
  };
  if (parallel && ParallelSpatialEnabled() && n > 0) {
    ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Global();
    p.ParallelForRange(n, assign_range);
  } else {
    assign_range(0, n);
  }
  if (GEO_OBS_ON()) {
    const int64_t hits =
        std::count_if(cells.begin(), cells.end(),
                      [](int64_t c) { return c >= 0; });
    GEO_OBS_COUNT("spatial.fastpath_hits", hits);
  }
  return cells;
}

std::vector<DistancePair> DistanceJoin(const std::vector<Point>& left,
                                       const std::vector<Point>& right,
                                       double radius,
                                       const JoinOptions& options) {
  GEO_CHECK_GE(radius, 0.0);
  std::vector<StrTree::Entry> entries;
  entries.reserve(right.size());
  for (int64_t i = 0; i < static_cast<int64_t>(right.size()); ++i) {
    entries.push_back(
        {Envelope(right[i].x, right[i].y, right[i].x, right[i].y), i});
  }
  StrTree tree(std::move(entries), 10,
               StrTree::BuildOptions{options.parallel, options.pool});
  const double r2 = radius * radius;
  return RunProbes<DistancePair>(
      static_cast<int64_t>(left.size()), options,
      [&left, &right, &tree, r2, radius](int64_t li,
                                         std::vector<DistancePair>& out) {
        const Point& p = left[li];
        Envelope probe(p.x - radius, p.y - radius, p.x + radius,
                       p.y + radius);
        tree.Visit(probe, [&](int64_t ri) {
          const double dx = p.x - right[ri].x;
          const double dy = p.y - right[ri].y;
          if (dx * dx + dy * dy <= r2) out.push_back({li, ri});
        });
      });
}

std::vector<DistancePair> DistanceJoin(const std::vector<Point>& left,
                                       const std::vector<Point>& right,
                                       double radius) {
  return DistanceJoin(left, right, radius, JoinOptions{});
}

}  // namespace geotorch::spatial
