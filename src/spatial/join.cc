#include "spatial/join.h"

#include "core/check.h"

namespace geotorch::spatial {

std::vector<JoinPair> PointInPolygonJoin(const std::vector<Point>& points,
                                         const std::vector<Polygon>& polygons,
                                         JoinStrategy strategy,
                                         const GridPartitioner* grid) {
  std::vector<JoinPair> out;
  switch (strategy) {
    case JoinStrategy::kNestedLoop: {
      for (int64_t pi = 0; pi < static_cast<int64_t>(points.size()); ++pi) {
        for (int64_t gi = 0; gi < static_cast<int64_t>(polygons.size());
             ++gi) {
          if (polygons[gi].Contains(points[pi])) {
            out.push_back({pi, gi});
          }
        }
      }
      break;
    }
    case JoinStrategy::kStrTree: {
      std::vector<StrTree::Entry> entries;
      entries.reserve(polygons.size());
      for (int64_t gi = 0; gi < static_cast<int64_t>(polygons.size()); ++gi) {
        entries.push_back({polygons[gi].bounds(), gi});
      }
      StrTree tree(std::move(entries));
      for (int64_t pi = 0; pi < static_cast<int64_t>(points.size()); ++pi) {
        const Point& p = points[pi];
        Envelope probe(p.x, p.y, p.x, p.y);
        tree.Visit(probe, [&](int64_t gi) {
          if (polygons[gi].Contains(p)) out.push_back({pi, gi});
        });
      }
      break;
    }
    case JoinStrategy::kGridHash: {
      GEO_CHECK(grid != nullptr)
          << "kGridHash requires the grid partitioner";
      GEO_CHECK_EQ(static_cast<int64_t>(polygons.size()), grid->NumCells());
      for (int64_t pi = 0; pi < static_cast<int64_t>(points.size()); ++pi) {
        auto cell = grid->CellOf(points[pi]);
        if (cell.has_value()) out.push_back({pi, *cell});
      }
      break;
    }
  }
  return out;
}

std::vector<int64_t> AssignPointsToCells(const std::vector<Point>& points,
                                         const GridPartitioner& grid) {
  std::vector<int64_t> cells(points.size(), -1);
  for (size_t i = 0; i < points.size(); ++i) {
    auto cell = grid.CellOf(points[i]);
    if (cell.has_value()) cells[i] = *cell;
  }
  return cells;
}

std::vector<DistancePair> DistanceJoin(const std::vector<Point>& left,
                                       const std::vector<Point>& right,
                                       double radius) {
  GEO_CHECK_GE(radius, 0.0);
  std::vector<StrTree::Entry> entries;
  entries.reserve(right.size());
  for (int64_t i = 0; i < static_cast<int64_t>(right.size()); ++i) {
    entries.push_back(
        {Envelope(right[i].x, right[i].y, right[i].x, right[i].y), i});
  }
  StrTree tree(std::move(entries));
  std::vector<DistancePair> out;
  const double r2 = radius * radius;
  for (int64_t li = 0; li < static_cast<int64_t>(left.size()); ++li) {
    const Point& p = left[li];
    Envelope probe(p.x - radius, p.y - radius, p.x + radius, p.y + radius);
    tree.Visit(probe, [&](int64_t ri) {
      const double dx = p.x - right[ri].x;
      const double dy = p.y - right[ri].y;
      if (dx * dx + dy * dy <= r2) out.push_back({li, ri});
    });
  }
  return out;
}

}  // namespace geotorch::spatial
