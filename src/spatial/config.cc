#include "spatial/config.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace geotorch::spatial {
namespace {

bool ParallelEnabledFromEnv() {
  const char* env = std::getenv("GEOTORCH_SPATIAL_PARALLEL");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool>& ParallelFlag() {
  static std::atomic<bool> flag{ParallelEnabledFromEnv()};
  return flag;
}

}  // namespace

bool ParallelSpatialEnabled() {
  return ParallelFlag().load(std::memory_order_relaxed);
}

void SetParallelSpatialEnabled(bool on) {
  ParallelFlag().store(on, std::memory_order_relaxed);
}

}  // namespace geotorch::spatial
