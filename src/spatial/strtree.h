#ifndef GEOTORCH_SPATIAL_STRTREE_H_
#define GEOTORCH_SPATIAL_STRTREE_H_

#include <cstdint>
#include <vector>

#include "spatial/geometry.h"

namespace geotorch {
class ThreadPool;
}  // namespace geotorch

namespace geotorch::spatial {

/// A bulk-loaded Sort-Tile-Recursive R-tree, the index Sedona uses for
/// spatial joins. Built once over (envelope, id) entries; queried with
/// an envelope to get candidate ids whose envelopes intersect it.
///
/// The bulk-load is level-wise and optionally threaded (DESIGN.md §8):
/// entries are sorted by center-x, tiled into sqrt(#leaves) slices,
/// each slice sorted by center-y, and nodes packed level by level. All
/// sort comparators are strict total orders (ties broken on the entry /
/// child index), and slice/leaf/parent boundaries depend only on the
/// entry count and node capacity — so the tree a parallel build
/// produces is identical to the serial one, node for node.
class StrTree {
 public:
  struct Entry {
    Envelope envelope;
    int64_t id;
  };

  /// How to execute the bulk-load. The default runs the sorts and the
  /// node packing on the global thread pool when the parallel spatial
  /// engine is enabled (see spatial/config.h).
  struct BuildOptions {
    bool parallel = true;
    /// Pool for parallel phases; nullptr means ThreadPool::Global().
    ThreadPool* pool = nullptr;
  };

  /// Builds the tree; `node_capacity` children per node.
  explicit StrTree(std::vector<Entry> entries, int node_capacity = 10);
  StrTree(std::vector<Entry> entries, int node_capacity,
          const BuildOptions& options);

  /// Ids of all entries whose envelope intersects `query`.
  std::vector<int64_t> Query(const Envelope& query) const;

  /// Ids of the k entries whose envelopes are nearest to `p`
  /// (best-first branch-and-bound over envelope distances), closest
  /// first. Returns fewer than k when the tree is small.
  std::vector<int64_t> Nearest(const Point& p, int k) const;

  /// Calls `fn(id)` for every intersecting entry (no allocation).
  template <typename Fn>
  void Visit(const Envelope& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    VisitNode(root_, query, fn);
  }

  int64_t size() const { return num_entries_; }
  int height() const { return height_; }

  /// True when both trees hold the same entries and the same node
  /// structure (envelopes compared bitwise). The property tests use
  /// this to assert parallel builds match serial ones exactly.
  bool IdenticalTo(const StrTree& other) const;

 private:
  struct Node {
    Envelope envelope;
    // Children indices for interior nodes; entry indices for leaves.
    std::vector<int32_t> children;
    bool is_leaf = false;
  };

  void Build(const BuildOptions& options);

  template <typename Fn>
  void VisitNode(int32_t node_id, const Envelope& query, Fn&& fn) const {
    const Node& node = nodes_[node_id];
    if (!node.envelope.Intersects(query)) return;
    if (node.is_leaf) {
      for (int32_t e : node.children) {
        if (entries_[e].envelope.Intersects(query)) fn(entries_[e].id);
      }
      return;
    }
    for (int32_t c : node.children) VisitNode(c, query, fn);
  }

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  int node_capacity_;
  int64_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace geotorch::spatial

#endif  // GEOTORCH_SPATIAL_STRTREE_H_
