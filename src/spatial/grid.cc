#include "spatial/grid.h"

#include <cmath>

#include "core/check.h"

namespace geotorch::spatial {

GridPartitioner::GridPartitioner(const Envelope& extent, int nx, int ny)
    : extent_(extent), nx_(nx), ny_(ny) {
  GEO_CHECK(!extent.IsEmpty());
  GEO_CHECK(nx >= 1 && ny >= 1);
  GEO_CHECK(extent.width() > 0 && extent.height() > 0);
  cell_w_ = extent.width() / nx;
  cell_h_ = extent.height() / ny;
}

std::optional<int64_t> GridPartitioner::CellOf(const Point& p) const {
  if (!extent_.Contains(p)) return std::nullopt;
  int ix = static_cast<int>((p.x - extent_.min_x()) / cell_w_);
  int iy = static_cast<int>((p.y - extent_.min_y()) / cell_h_);
  // Points exactly on the max edge belong to the last cell.
  if (ix == nx_) ix = nx_ - 1;
  if (iy == ny_) iy = ny_ - 1;
  return static_cast<int64_t>(iy) * nx_ + ix;
}

Envelope GridPartitioner::CellEnvelope(int64_t cell) const {
  GEO_CHECK(cell >= 0 && cell < NumCells());
  const int ix = CellX(cell);
  const int iy = CellY(cell);
  const double x0 = extent_.min_x() + ix * cell_w_;
  const double y0 = extent_.min_y() + iy * cell_h_;
  return Envelope(x0, y0, x0 + cell_w_, y0 + cell_h_);
}

std::vector<Polygon> GridPartitioner::CellPolygons() const {
  std::vector<Polygon> polys;
  polys.reserve(NumCells());
  for (int64_t c = 0; c < NumCells(); ++c) {
    polys.push_back(Polygon::FromEnvelope(CellEnvelope(c)));
  }
  return polys;
}

std::vector<int64_t> GridPartitioner::NeighborCells(int64_t cell) const {
  GEO_CHECK(cell >= 0 && cell < NumCells());
  const int ix = CellX(cell);
  const int iy = CellY(cell);
  std::vector<int64_t> out;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int jx = ix + dx;
      const int jy = iy + dy;
      if (jx < 0 || jx >= nx_ || jy < 0 || jy >= ny_) continue;
      out.push_back(static_cast<int64_t>(jy) * nx_ + jx);
    }
  }
  return out;
}

}  // namespace geotorch::spatial
