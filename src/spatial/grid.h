#ifndef GEOTORCH_SPATIAL_GRID_H_
#define GEOTORCH_SPATIAL_GRID_H_

#include <optional>
#include <vector>

#include "spatial/geometry.h"

namespace geotorch::spatial {

/// Partitions a rectangular extent into an nx x ny grid of equal cells —
/// the paper's SpacePartition: "the full spatial unit is converted into
/// a grid-like structure by partitioning both the x-axis and y-axis
/// into equal-sized slots" (Section II-A2). Cell (0,0) is the
/// bottom-left (min_x, min_y) corner; cell id = iy * nx + ix.
class GridPartitioner {
 public:
  GridPartitioner(const Envelope& extent, int nx, int ny);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int64_t NumCells() const { return static_cast<int64_t>(nx_) * ny_; }
  const Envelope& extent() const { return extent_; }

  /// Cell id of `p`, or nullopt when the point lies outside the extent.
  /// Points on the max edge clamp into the last cell.
  std::optional<int64_t> CellOf(const Point& p) const;

  /// Column/row of a cell id.
  int CellX(int64_t cell) const { return static_cast<int>(cell % nx_); }
  int CellY(int64_t cell) const { return static_cast<int>(cell / nx_); }

  /// Geometry of one cell.
  Envelope CellEnvelope(int64_t cell) const;

  /// All cells as polygons, ordered by cell id. (The polygon side of a
  /// point-in-polygon spatial join over the grid.)
  std::vector<Polygon> CellPolygons() const;

  /// Ids of the (up to 8) cells adjacent to `cell` — grid adjacency,
  /// which the paper notes grid partitioning preserves.
  std::vector<int64_t> NeighborCells(int64_t cell) const;

 private:
  Envelope extent_;
  int nx_;
  int ny_;
  double cell_w_;
  double cell_h_;
};

}  // namespace geotorch::spatial

#endif  // GEOTORCH_SPATIAL_GRID_H_
