#ifndef GEOTORCH_SPATIAL_JOIN_H_
#define GEOTORCH_SPATIAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "spatial/geometry.h"
#include "spatial/grid.h"
#include "spatial/strtree.h"

namespace geotorch::spatial {

/// A (point index, polygon index) match from a spatial join.
struct JoinPair {
  int64_t point_idx;
  int64_t polygon_idx;
};

/// Point-in-polygon join strategies. The paper's preprocessing module
/// aggregates trip points into grid cells via "efficient spatial joins
/// on Apache Sedona"; these are the equivalents, compared by the
/// ablation bench `ablation_spatial_join`.
enum class JoinStrategy {
  kNestedLoop,  ///< O(P * G) baseline
  kStrTree,     ///< index the polygons, probe with each point
  kGridHash,    ///< O(1) cell lookup, valid when polygons form a grid
};

/// Joins each point to the polygons containing it, with the given
/// strategy. For kGridHash, `grid` must describe the same cells as
/// `polygons` (polygon i == grid cell i); pass nullptr otherwise.
std::vector<JoinPair> PointInPolygonJoin(const std::vector<Point>& points,
                                         const std::vector<Polygon>& polygons,
                                         JoinStrategy strategy,
                                         const GridPartitioner* grid = nullptr);

/// Fast path used by the preprocessing module: assigns each point its
/// grid cell id (-1 when outside the extent).
std::vector<int64_t> AssignPointsToCells(const std::vector<Point>& points,
                                         const GridPartitioner& grid);

/// A (left index, right index) match from a distance join.
struct DistancePair {
  int64_t left_idx;
  int64_t right_idx;
};

/// All (a, b) pairs with Euclidean distance <= radius, found by
/// indexing `right` in an STR-tree and probing with a radius box per
/// left point (Sedona's DistanceJoin).
std::vector<DistancePair> DistanceJoin(const std::vector<Point>& left,
                                       const std::vector<Point>& right,
                                       double radius);

}  // namespace geotorch::spatial

#endif  // GEOTORCH_SPATIAL_JOIN_H_
