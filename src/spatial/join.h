#ifndef GEOTORCH_SPATIAL_JOIN_H_
#define GEOTORCH_SPATIAL_JOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "spatial/geometry.h"
#include "spatial/grid.h"
#include "spatial/strtree.h"

namespace geotorch::spatial {

/// A (point index, polygon index) match from a spatial join.
struct JoinPair {
  int64_t point_idx;
  int64_t polygon_idx;
};

inline bool operator==(const JoinPair& a, const JoinPair& b) {
  return a.point_idx == b.point_idx && a.polygon_idx == b.polygon_idx;
}

/// Point-in-polygon join strategies. The paper's preprocessing module
/// aggregates trip points into grid cells via "efficient spatial joins
/// on Apache Sedona"; these are the equivalents, compared by the
/// ablation bench `ablation_spatial_join`.
enum class JoinStrategy {
  kNestedLoop,  ///< O(P * G) baseline
  kStrTree,     ///< index the polygons, probe with each point
  kGridHash,    ///< O(1) cell lookup, valid when polygons form a grid
  kAuto,        ///< kGridHash when a grid is supplied, else kStrTree
};

/// Default strategy, overridable with the GEOTORCH_JOIN environment
/// variable: "nested", "strtree", "grid", or "auto" (the default).
JoinStrategy DefaultJoinStrategy();

/// How a join executes. Probe-side rows fan out across the pool in
/// contiguous chunks with per-chunk result buffers; the buffers are
/// concatenated in chunk order, so the output is identical to the
/// serial join row for row (DESIGN.md §8).
struct JoinOptions {
  JoinStrategy strategy = JoinStrategy::kAuto;
  /// Run probes in parallel (also gated on ParallelSpatialEnabled()
  /// for the convenience overloads and on the pool having >1 worker).
  bool parallel = true;
  /// Pool for parallel execution; nullptr means ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

/// Joins each point to the polygons containing it. For kGridHash (or
/// kAuto with a grid), `grid` must describe the same cells as
/// `polygons` (polygon i == grid cell i); pass nullptr otherwise.
std::vector<JoinPair> PointInPolygonJoin(const std::vector<Point>& points,
                                         const std::vector<Polygon>& polygons,
                                         const JoinOptions& options,
                                         const GridPartitioner* grid = nullptr);

/// Convenience overload: `strategy` with parallel execution per
/// ParallelSpatialEnabled() on the global pool.
std::vector<JoinPair> PointInPolygonJoin(const std::vector<Point>& points,
                                         const std::vector<Polygon>& polygons,
                                         JoinStrategy strategy,
                                         const GridPartitioner* grid = nullptr);

/// Fast path used by the preprocessing module: assigns each point its
/// grid cell id (-1 when outside the extent) in O(1) per point — no
/// tree walk. Takes a span so a DataFrame column can be probed straight
/// out of a memory-mapped partition without copying. Runs
/// partition-parallel on `pool` (nullptr: the global pool) unless
/// disabled; every slot is written independently, so the output never
/// depends on the execution mode.
std::vector<int64_t> AssignPointsToCells(std::span<const Point> points,
                                         const GridPartitioner& grid,
                                         bool parallel = true,
                                         ThreadPool* pool = nullptr);

/// A (left index, right index) match from a distance join.
struct DistancePair {
  int64_t left_idx;
  int64_t right_idx;
};

inline bool operator==(const DistancePair& a, const DistancePair& b) {
  return a.left_idx == b.left_idx && a.right_idx == b.right_idx;
}

/// All (a, b) pairs with Euclidean distance <= radius, found by
/// indexing `right` in an STR-tree and probing with a radius box per
/// left point (Sedona's DistanceJoin). Build and probes are threaded
/// like PointInPolygonJoin; output order matches the serial join.
std::vector<DistancePair> DistanceJoin(const std::vector<Point>& left,
                                       const std::vector<Point>& right,
                                       double radius);
std::vector<DistancePair> DistanceJoin(const std::vector<Point>& left,
                                       const std::vector<Point>& right,
                                       double radius,
                                       const JoinOptions& options);

}  // namespace geotorch::spatial

#endif  // GEOTORCH_SPATIAL_JOIN_H_
