#include "data/dataset.h"

#include "core/check.h"
#include "tensor/ops.h"

namespace geotorch::data {

namespace ts = ::geotorch::tensor;

namespace {

// Extracts sample `i` of a stacked (N, ...) tensor as (...)-shaped.
ts::Tensor TakeRow(const ts::Tensor& stacked, int64_t i) {
  ts::Tensor row = ts::Slice(stacked, 0, i, i + 1);
  ts::Shape shape = stacked.shape();
  shape.erase(shape.begin());
  if (shape.empty()) shape = {1};
  return row.Reshape(shape);
}

}  // namespace

TensorDataset::TensorDataset(ts::Tensor xs, ts::Tensor ys,
                             std::vector<ts::Tensor> extras)
    : xs_(std::move(xs)), ys_(std::move(ys)), extras_(std::move(extras)) {
  GEO_CHECK_GE(xs_.ndim(), 1);
  n_ = xs_.size(0);
  GEO_CHECK_EQ(ys_.size(0), n_);
  for (const auto& e : extras_) GEO_CHECK_EQ(e.size(0), n_);
}

Sample TensorDataset::Get(int64_t index) const {
  GEO_CHECK(index >= 0 && index < n_);
  Sample s;
  s.x = TakeRow(xs_, index);
  s.y = TakeRow(ys_, index);
  s.extras.reserve(extras_.size());
  for (const auto& e : extras_) s.extras.push_back(TakeRow(e, index));
  return s;
}

SubsetDataset::SubsetDataset(const Dataset* base,
                             std::vector<int64_t> indices)
    : base_(base), indices_(std::move(indices)) {
  GEO_CHECK(base_ != nullptr);
}

Sample SubsetDataset::Get(int64_t index) const {
  GEO_CHECK(index >= 0 && index < Size());
  return base_->Get(indices_[index]);
}

SplitIndices ChronologicalSplit(int64_t n, double train_frac) {
  GEO_CHECK(train_frac > 0.0 && train_frac < 1.0);
  SplitIndices split;
  const int64_t train_end = static_cast<int64_t>(n * train_frac);
  const int64_t val_end = train_end + (n - train_end) / 2;
  for (int64_t i = 0; i < train_end; ++i) split.train.push_back(i);
  for (int64_t i = train_end; i < val_end; ++i) split.val.push_back(i);
  for (int64_t i = val_end; i < n; ++i) split.test.push_back(i);
  return split;
}

}  // namespace geotorch::data
