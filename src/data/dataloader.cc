#include "data/dataloader.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "core/check.h"
#include "core/thread_pool.h"
#include "obs/obs.h"
#include "tensor/ops.h"

namespace geotorch::data {

namespace ts = ::geotorch::tensor;

DataLoader::DataLoader(const Dataset* dataset, int64_t batch_size,
                       bool shuffle, uint64_t seed, bool drop_last,
                       bool prefetch)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      drop_last_(drop_last),
      prefetch_(prefetch),
      rng_(seed) {
  GEO_CHECK(dataset_ != nullptr);
  GEO_CHECK_GE(batch_size_, 1);
  order_.resize(dataset_->Size());
  std::iota(order_.begin(), order_.end(), 0);
  Reset();
}

void DataLoader::Reset() {
  if (pending_.has_value()) {
    pending_->wait();  // drain the in-flight batch before reshuffling
    pending_.reset();
  }
  cursor_ = 0;
  if (shuffle_) {
    std::shuffle(order_.begin(), order_.end(), rng_.engine());
  }
}

int64_t DataLoader::NumBatches() const {
  const int64_t n = dataset_->Size();
  if (drop_last_) return n / batch_size_;
  return (n + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::BuildRange(int64_t begin, int64_t end) const {
  const int64_t t0 = GEO_OBS_ON() ? obs::NowNs() : 0;
  std::vector<ts::Tensor> xs;
  std::vector<ts::Tensor> ys;
  std::vector<std::vector<ts::Tensor>> extras;
  xs.reserve(end - begin);
  ys.reserve(end - begin);
  for (int64_t i = begin; i < end; ++i) {
    Sample s = dataset_->Get(order_[i]);
    xs.push_back(std::move(s.x));
    ys.push_back(std::move(s.y));
    if (extras.empty()) extras.resize(s.extras.size());
    GEO_CHECK_EQ(extras.size(), s.extras.size());
    for (size_t e = 0; e < s.extras.size(); ++e) {
      extras[e].push_back(std::move(s.extras[e]));
    }
  }
  Batch batch;
  batch.x = ts::Stack(xs);
  batch.y = ts::Stack(ys);
  for (auto& group : extras) batch.extras.push_back(ts::Stack(group));
  batch.size = static_cast<int64_t>(xs.size());
  GEO_OBS_COUNT("loader.batches_built", 1);
  if (t0 != 0) GEO_OBS_HIST("loader.build_us", (obs::NowNs() - t0) / 1000);
  return batch;
}

bool DataLoader::NextRange(int64_t* begin, int64_t* end) {
  const int64_t n = dataset_->Size();
  if (cursor_ >= n) return false;
  *begin = cursor_;
  *end = std::min(n, cursor_ + batch_size_);
  if (drop_last_ && *end - *begin < batch_size_) return false;
  cursor_ = *end;
  return true;
}

bool DataLoader::Next(Batch* batch) {
  int64_t begin = 0;
  int64_t end = 0;
  if (!prefetch_) {
    if (!NextRange(&begin, &end)) return false;
    *batch = BuildRange(begin, end);
    return true;
  }
  // Prefetching: consume the in-flight batch (or build the first one),
  // then enqueue assembly of the following batch on the pool.
  if (pending_.has_value()) {
    if (GEO_OBS_ON()) {
      // A not-yet-ready future means the trainer outran the prefetch
      // worker — the stall the batch_wait_us histogram quantifies.
      const bool ready = pending_->wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready;
      if (ready) {
        GEO_OBS_COUNT("loader.prefetch_hits", 1);
      } else {
        GEO_OBS_COUNT("loader.prefetch_stalls", 1);
      }
      const int64_t t0 = obs::NowNs();
      *batch = pending_->get();
      GEO_OBS_HIST("loader.batch_wait_us", (obs::NowNs() - t0) / 1000);
    } else {
      *batch = pending_->get();
    }
    pending_.reset();
  } else {
    if (!NextRange(&begin, &end)) return false;
    *batch = BuildRange(begin, end);
  }
  if (NextRange(&begin, &end)) {
    auto task = std::make_shared<std::packaged_task<Batch()>>(
        [this, begin, end] { return BuildRange(begin, end); });
    pending_ = task->get_future();
    ThreadPool::Global().Submit([task] { (*task)(); });
  }
  return true;
}

}  // namespace geotorch::data
