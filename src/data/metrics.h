#ifndef GEOTORCH_DATA_METRICS_H_
#define GEOTORCH_DATA_METRICS_H_

#include "tensor/tensor.h"

namespace geotorch::data {

/// Mean absolute error over all elements (Section V-A3 metric).
float Mae(const tensor::Tensor& pred, const tensor::Tensor& target);

/// Root mean squared error over all elements.
float Rmse(const tensor::Tensor& pred, const tensor::Tensor& target);

/// Top-1 classification accuracy. logits: (N, C); labels: (N) class ids.
float Accuracy(const tensor::Tensor& logits, const tensor::Tensor& labels);

/// Per-pixel accuracy for segmentation. logits: (N, C, H, W);
/// labels: (N, H, W) class ids.
float PixelAccuracy(const tensor::Tensor& logits,
                    const tensor::Tensor& labels);

/// Intersection-over-union of class `cls` for segmentation outputs.
float IoU(const tensor::Tensor& logits, const tensor::Tensor& labels,
          int64_t cls);

/// Running mean/min/max accumulator used to report the paper's
/// "average ± variation over 5 iterations" format.
class RunStats {
 public:
  void Add(double v);
  double mean() const;
  /// Largest deviation of any run from the mean.
  double max_deviation() const;
  int count() const { return static_cast<int>(values_.size()); }

 private:
  std::vector<double> values_;
};

}  // namespace geotorch::data

#endif  // GEOTORCH_DATA_METRICS_H_
