#ifndef GEOTORCH_DATA_DATASET_H_
#define GEOTORCH_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace geotorch::data {

/// One training example. `x` and `y` are the primary input/label;
/// `extras` carries any additional model inputs — e.g. the period and
/// trend tensors of the periodical representation, or the handcrafted
/// feature vector DeepSAT-V2 fuses with its CNN features.
struct Sample {
  tensor::Tensor x;
  tensor::Tensor y;
  std::vector<tensor::Tensor> extras;
};

/// Random-access dataset, mirroring torch.utils.data.Dataset: a size
/// and an index operator. GeoTorchAI datasets extend this class the
/// same way the Python library extends PyTorch's (Section III-A1).
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual int64_t Size() const = 0;
  virtual Sample Get(int64_t index) const = 0;
};

/// In-memory dataset over pre-stacked tensors: xs is (N, ...), ys is
/// (N, ...), each extra is (N, ...). Get(i) slices out sample i.
class TensorDataset : public Dataset {
 public:
  TensorDataset(tensor::Tensor xs, tensor::Tensor ys,
                std::vector<tensor::Tensor> extras = {});

  int64_t Size() const override { return n_; }
  Sample Get(int64_t index) const override;

 private:
  tensor::Tensor xs_;
  tensor::Tensor ys_;
  std::vector<tensor::Tensor> extras_;
  int64_t n_;
};

/// A view of another dataset through an index list (train/val/test
/// splits without copying).
class SubsetDataset : public Dataset {
 public:
  SubsetDataset(const Dataset* base, std::vector<int64_t> indices);

  int64_t Size() const override {
    return static_cast<int64_t>(indices_.size());
  }
  Sample Get(int64_t index) const override;

 private:
  const Dataset* base_;
  std::vector<int64_t> indices_;
};

/// Index split following the paper's protocol (Section V-C): the first
/// `train_frac` of the timeline is training data, the next half of the
/// remainder validation, the last half test.
struct SplitIndices {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};
SplitIndices ChronologicalSplit(int64_t n, double train_frac = 0.8);

}  // namespace geotorch::data

#endif  // GEOTORCH_DATA_DATASET_H_
