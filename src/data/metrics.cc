#include "data/metrics.h"

#include <cmath>

#include "core/check.h"
#include "tensor/ops.h"

namespace geotorch::data {

namespace ts = ::geotorch::tensor;

float Mae(const ts::Tensor& pred, const ts::Tensor& target) {
  GEO_CHECK(ts::SameShape(pred.shape(), target.shape()));
  return ts::MeanAll(ts::Abs(ts::Sub(pred, target)));
}

float Rmse(const ts::Tensor& pred, const ts::Tensor& target) {
  GEO_CHECK(ts::SameShape(pred.shape(), target.shape()));
  ts::Tensor d = ts::Sub(pred, target);
  return std::sqrt(ts::MeanAll(ts::Mul(d, d)));
}

float Accuracy(const ts::Tensor& logits, const ts::Tensor& labels) {
  GEO_CHECK_EQ(logits.ndim(), 2);
  const int64_t n = logits.size(0);
  GEO_CHECK_EQ(labels.numel(), n);
  ts::Tensor pred = ts::Argmax(logits, 1);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (static_cast<int64_t>(pred.flat(i)) ==
        static_cast<int64_t>(labels.flat(i))) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

float PixelAccuracy(const ts::Tensor& logits, const ts::Tensor& labels) {
  GEO_CHECK_EQ(logits.ndim(), 4);
  ts::Tensor pred = ts::Argmax(logits, 1);  // (N, H, W)
  GEO_CHECK_EQ(pred.numel(), labels.numel());
  int64_t correct = 0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    if (static_cast<int64_t>(pred.flat(i)) ==
        static_cast<int64_t>(labels.flat(i))) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(pred.numel());
}

float IoU(const ts::Tensor& logits, const ts::Tensor& labels, int64_t cls) {
  ts::Tensor pred = ts::Argmax(logits, 1);
  GEO_CHECK_EQ(pred.numel(), labels.numel());
  int64_t inter = 0;
  int64_t uni = 0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const bool p = static_cast<int64_t>(pred.flat(i)) == cls;
    const bool t = static_cast<int64_t>(labels.flat(i)) == cls;
    if (p && t) ++inter;
    if (p || t) ++uni;
  }
  if (uni == 0) return 1.0f;
  return static_cast<float>(inter) / static_cast<float>(uni);
}

void RunStats::Add(double v) { values_.push_back(v); }

double RunStats::mean() const {
  GEO_CHECK(!values_.empty());
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double RunStats::max_deviation() const {
  const double m = mean();
  double dev = 0.0;
  for (double v : values_) dev = std::max(dev, std::fabs(v - m));
  return dev;
}

}  // namespace geotorch::data
