#ifndef GEOTORCH_DATA_DATALOADER_H_
#define GEOTORCH_DATA_DATALOADER_H_

#include <future>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace geotorch::data {

/// A minibatch: stacked inputs/labels plus stacked extras.
struct Batch {
  tensor::Tensor x;                    // (B, ...)
  tensor::Tensor y;                    // (B, ...)
  std::vector<tensor::Tensor> extras;  // each (B, ...)
  int64_t size = 0;
};

/// Batches a Dataset, optionally shuffling each epoch — the analogue of
/// torch.utils.data.DataLoader in the paper's Listing 1 workflow. With
/// `prefetch`, the next batch is assembled on a worker thread while the
/// caller trains on the current one (the torch.multiprocessing-workers
/// role).
class DataLoader {
 public:
  DataLoader(const Dataset* dataset, int64_t batch_size, bool shuffle,
             uint64_t seed = 0, bool drop_last = false,
             bool prefetch = false);

  /// Starts a new epoch (reshuffles when shuffling is on).
  void Reset();

  /// Fills `batch` with the next minibatch; false at epoch end.
  bool Next(Batch* batch);

  /// Number of batches per epoch.
  int64_t NumBatches() const;

 private:
  /// Assembles the batch covering order_[begin, end).
  Batch BuildRange(int64_t begin, int64_t end) const;
  /// Next [begin, end) range, or false at epoch end.
  bool NextRange(int64_t* begin, int64_t* end);

  const Dataset* dataset_;
  int64_t batch_size_;
  bool shuffle_;
  bool drop_last_;
  bool prefetch_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
  std::optional<std::future<Batch>> pending_;
};

}  // namespace geotorch::data

#endif  // GEOTORCH_DATA_DATALOADER_H_
