#ifndef GEOTORCH_SERVE_FLEET_H_
#define GEOTORCH_SERVE_FLEET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "serve/config.h"
#include "serve/engine.h"
#include "tensor/tensor.h"

namespace geotorch::serve {

/// One loaded model version behind a fleet replica (DESIGN.md §11).
/// Type-erased on purpose: the fleet routes, swaps, and retires
/// snapshots without knowing the model family, which keeps fleet.cc's
/// dependency surface identical to engine.cc's (tensor/core/obs) so
/// fleet_tsan_test can recompile the router + reload path standalone.
///
/// `owner` keeps the module (or whatever backs `forward`) alive;
/// in-flight batches hold a shared_ptr to the whole snapshot, so a
/// swapped-out version retires exactly when its last batch finishes.
/// `load` rebuilds THIS snapshot's own weights from a GTCP checkpoint
/// path — factories typically wire io::LoadStateDict plus a
/// SetPrecision re-derivation of the packed low-precision panels; a
/// null `load` marks the model as not hot-reloadable.
struct ModelSnapshot {
  std::shared_ptr<void> owner;
  Engine::BatchForward forward;
  std::function<Status(const std::string& path)> load;
  /// Assigned by the fleet: 1 for the snapshot a replica starts with,
  /// +1 per successful Reload of its model.
  int64_t version = 0;
};

/// Builds a fresh, fully-initialized snapshot (its own module
/// instance). Called once per replica at AddModel and once per replica
/// per Reload — replicas never share mutable model state, so their
/// forwards can run concurrently.
using SnapshotFactory = std::function<ModelSnapshot()>;

struct FleetStats {
  int64_t routed = 0;           ///< submits that passed admission
  int64_t tenant_rejected = 0;  ///< submits refused by a tenant quota
  int64_t reload_swaps = 0;     ///< replica snapshot swaps committed
  int64_t reload_failures = 0;  ///< Reload calls that returned an error
};

/// A sharded, replicated serving fleet (DESIGN.md §11): N Engine
/// replicas per named model, a least-queue-depth router with
/// round-robin tie-break, per-tenant token-bucket admission control
/// layered over the engines' OutOfRange backpressure, and hot model
/// reload that swaps every replica of a model to a new GTCP checkpoint
/// without dropping in-flight requests.
///
/// Hot reload is copy-on-swap: Reload builds a SHADOW snapshot per
/// replica (a fresh module from the factory), loads the checkpoint
/// into the shadow while the old snapshot keeps serving, and only
/// after every shadow loaded cleanly swaps each replica's snapshot
/// pointer — a swap the batcher observes between batches, never
/// mid-forward, so no forward ever sees a half-loaded model and every
/// response is bitwise-consistent with exactly one checkpoint version.
/// A load failure (truncated / bit-flipped file, name or shape
/// mismatch) aborts before ANY replica swapped: the old version keeps
/// serving and the caller gets the Status. Old snapshots drain and
/// retire via shared_ptr: Reload waits out each replica's in-flight
/// work (Engine::Drain), so by the time it returns no forward still
/// runs the previous version.
///
/// Thread-safety: Submit / Reload / AddModel / stats may race freely.
/// Reloads of the same model serialize; Submit never blocks on a
/// reload (the router keeps handing requests to the old snapshot until
/// the instant of the swap).
class Fleet {
 public:
  explicit Fleet(FleetOptions options = FleetOptions::FromEnv());
  /// Shuts down every replica (graceful drain, as Engine::~Engine).
  ~Fleet();
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Registers `name` backed by `replicas` engines (0 means
  /// options.replicas), each wrapping its own snapshot from `factory`.
  /// AlreadyExists if the name is taken, InvalidArgument if the
  /// factory yields a snapshot with no forward.
  Status AddModel(const std::string& name, SnapshotFactory factory,
                  SampleSpec spec, int replicas = 0);

  /// Routes one sample to the least-loaded replica of `model` and
  /// blocks until its output row is ready. `deadline_us` bounds the
  /// wait on the chosen replica (0 = forever; see Engine::Submit).
  /// Errors:
  ///   NotFound          — no model with that name;
  ///   ResourceExhausted — `tenant` is over its request quota;
  ///   OutOfRange        — every replica's queue is full (backpressure);
  ///   DeadlineExceeded  — admitted, but not answered in time;
  ///   InvalidArgument   — shape mismatch, or fleet shut down.
  /// Replicas are tried in ascending outstanding-request order, so a
  /// single full replica does not bounce a request the next one could
  /// take; only when all reject does the caller see backpressure. A
  /// deadline expiry is NOT retried on the next replica — the time is
  /// already spent, which is the point of the deadline.
  Result<tensor::Tensor> Submit(const std::string& model,
                                const std::string& tenant,
                                const data::Sample& sample,
                                int64_t deadline_us = 0);

  /// Hot-swaps every replica of `model` to the checkpoint at `path`
  /// (copy-on-swap, see class comment). On success the model's version
  /// is bumped and no forward still runs the old weights; on error
  /// nothing changed and the old version keeps serving. Reloads of the
  /// same model serialize; traffic keeps flowing throughout.
  Status Reload(const std::string& model, const std::string& path);

  /// Version currently served by `model` (1 until the first successful
  /// Reload). NotFound for unknown names.
  Result<int64_t> ModelVersion(const std::string& model) const;

  /// Replica count for `model`; 0 for unknown names.
  int ReplicaCount(const std::string& model) const;

  /// Per-replica outstanding requests (accepted, not yet answered) —
  /// the router's load signal. Empty for unknown names.
  std::vector<int64_t> Outstanding(const std::string& model) const;

  /// Per-replica engine counters (accepted / rejected / batches), in
  /// replica order. Empty for unknown names.
  std::vector<EngineStats> ReplicaStats(const std::string& model) const;

  FleetStats stats() const;
  const FleetOptions& options() const { return options_; }

  /// Stops every replica: drains accepted requests, then joins the
  /// batcher threads. Idempotent; later submits get InvalidArgument.
  void Shutdown();

 private:
  struct Replica {
    std::unique_ptr<Engine> engine;
    /// Guards snapshot swaps against the batcher's per-batch read.
    /// Held only to copy / replace the shared_ptr, never across a
    /// forward, so reloads cannot stall serving.
    std::mutex snap_mu;
    std::shared_ptr<const ModelSnapshot> snapshot;
    /// Requests routed here and not yet answered (queued + batching +
    /// mid-forward). The router's least-depth key.
    std::atomic<int64_t> outstanding{0};
    /// "fleet.queue_depth.<model>.<index>" — built once so the per-
    /// request gauge update does no string assembly.
    std::string gauge_name;
  };

  struct ModelEntry {
    std::string name;
    SnapshotFactory factory;
    SampleSpec spec;
    std::vector<std::unique_ptr<Replica>> replicas;
    /// Round-robin cursor: rotates the starting replica of the
    /// router's scan so equal-depth replicas share load evenly.
    std::atomic<uint64_t> rr{0};
    /// Serializes Reload calls for this model.
    std::mutex reload_mu;
    std::atomic<int64_t> version{1};
  };

  /// Token bucket; guarded by tenants_mu_.
  struct TenantBucket {
    double tokens = 0.0;
    int64_t last_ns = 0;
  };

  ModelEntry* FindModel(const std::string& name) const;
  /// Takes one token from `tenant`'s bucket; false when the quota is
  /// exhausted. Always true when tenant_qps is 0 (quotas off).
  bool Admit(const std::string& tenant);

  FleetOptions options_;

  mutable std::mutex models_mu_;
  /// unique_ptr entries: pointers stay stable while AddModel appends.
  std::vector<std::unique_ptr<ModelEntry>> models_;

  std::mutex tenants_mu_;
  std::unordered_map<std::string, TenantBucket> tenants_;

  std::atomic<int64_t> routed_{0};
  std::atomic<int64_t> tenant_rejected_{0};
  std::atomic<int64_t> reload_swaps_{0};
  std::atomic<int64_t> reload_failures_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace geotorch::serve

#endif  // GEOTORCH_SERVE_FLEET_H_
