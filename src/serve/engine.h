#ifndef GEOTORCH_SERVE_ENGINE_H_
#define GEOTORCH_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/status.h"
#include "data/dataloader.h"
#include "serve/config.h"
#include "tensor/tensor.h"

namespace geotorch::serve {

/// Per-sample input contract of an engine: the shape of one request's
/// `x` (no leading batch dimension) and of each extra input. Submits
/// are validated against it, and warmup batches are built from it.
struct SampleSpec {
  tensor::Shape x;
  std::vector<tensor::Shape> extras;
};

struct EngineStats {
  int64_t requests = 0;  ///< accepted submits
  int64_t rejected = 0;  ///< backpressure rejections (queue full)
  int64_t batches = 0;   ///< forward passes run (excluding warmup)
  /// Submits whose caller stopped waiting because its per-request
  /// deadline elapsed. These requests were admitted and still count in
  /// `requests`; the batcher answers them in the background.
  int64_t deadline_exceeded = 0;
};

/// Dynamically-batched inference engine (DESIGN.md §9). Callers submit
/// single samples and block on the result; a batcher thread coalesces
/// up to `max_batch` queued requests (waiting at most `max_delay_us`
/// for a partial batch to fill), runs ONE batched forward, and
/// scatters the output rows back to the waiting callers. The bounded
/// queue rejects submits once `max_queue` requests are waiting, giving
/// overloaded deployments backpressure instead of unbounded memory.
///
/// The engine is model-agnostic: it owns a BatchForward closure.
/// serve/adapters.h wraps this repo's model families (grid models,
/// raster classifiers, segmentation nets) in eval mode under
/// NoGradGuard; checkpoints load via io::LoadStateDict beforehand.
class Engine {
 public:
  /// Batched inference function: a stacked (B, ...) batch in, stacked
  /// (B, ...) outputs out (row i belongs to request i). Called only
  /// from the batcher thread, never concurrently with itself.
  using BatchForward = std::function<tensor::Tensor(const data::Batch&)>;

  /// Starts the batcher thread after running `warmup_batches` full-size
  /// zero-batch forwards.
  Engine(BatchForward forward, SampleSpec spec,
         EngineOptions options = EngineOptions::FromEnv());
  /// Drains and joins (graceful shutdown).
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submits one sample (sample.x and sample.extras must match the
  /// SampleSpec; sample.y is ignored) and blocks until its output row
  /// is ready. `deadline_us` bounds the wait, measured from entry
  /// (queueing + batching + forward); 0 or negative waits forever.
  /// Errors:
  ///   InvalidArgument  — shape/extras mismatch, or engine shut down;
  ///   OutOfRange       — bounded queue full (backpressure; retry later);
  ///   DeadlineExceeded — the deadline elapsed before the output row was
  ///                      ready. The request was already admitted, so
  ///                      the batcher still answers it in the background
  ///                      (it keeps counting toward Drain); only this
  ///                      caller abandons the wait. Callers with a
  ///                      staleness budget (the streaming predictor) use
  ///                      this so a stalled batcher costs one deadline,
  ///                      not an unbounded block.
  Result<tensor::Tensor> Submit(const data::Sample& sample,
                                int64_t deadline_us = 0);

  /// Stops accepting new submits, serves everything already queued,
  /// and joins the batcher thread. Idempotent and thread-safe.
  void Shutdown();

  /// Blocks until every request accepted BEFORE this call has been
  /// answered (its output row committed to the caller's future), then
  /// returns. The engine keeps running: submits arriving during the
  /// drain are accepted normally and are NOT waited for, so a drain
  /// racing a steady request stream still terminates — its target is
  /// the accepted count snapshotted at entry, which later submits
  /// cannot grow. Safe to call from several threads at once, and
  /// returns immediately on an idle engine.
  ///
  /// "Answered", not "dequeued": a request leaves the queue when the
  /// batcher takes its batch, strictly before the forward runs. A
  /// drain that waited only for an empty queue could hand "quiesced"
  /// back to a caller while a batch is still mid-forward — a caller
  /// that then tears down the model the engine serves from would leave
  /// the batcher computing on freed weights and its waiters blocked on
  /// futures that are never fulfilled. This is the primitive the fleet
  /// reload path uses to retire a swapped-out model snapshot.
  void Drain();

  /// Requests currently waiting in the queue (excludes any batch the
  /// forward is running right now). The fleet router uses this plus
  /// its own in-flight accounting for least-loaded replica choice.
  int queue_depth() const;

  EngineStats stats() const;
  const EngineOptions& options() const { return options_; }
  const SampleSpec& spec() const { return spec_; }

 private:
  struct Request {
    data::Sample sample;
    std::promise<tensor::Tensor> promise;
    int64_t enqueue_ns = 0;
  };

  void BatcherLoop();
  /// Stacks `requests` into one Batch, runs the forward, scatters the
  /// output rows into the request promises.
  void RunBatch(std::vector<Request> requests);
  void Warmup();

  BatchForward forward_;
  SampleSpec spec_;
  EngineOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Signalled by RunBatch each time answered_ advances; Drain waits on
  /// it. Separate from cv_ so drain wake-ups never contend with the
  /// batcher's fill-wait.
  std::condition_variable drained_cv_;
  std::deque<Request> queue_;
  /// Requests answered so far (output row committed to the caller's
  /// future). Guarded by mu_; together with the accepted count
  /// (requests_) it defines Drain's completion predicate
  /// answered_ >= target.
  int64_t answered_ = 0;
  bool draining_ = false;
  /// Guarded by mu_. Set by RunBatch when the batch it just ran was a
  /// singleton AND the queue was empty at completion: the request
  /// stream demonstrably does not coalesce (a lone sequential client
  /// only submits after the previous reply), so the next cycle skips
  /// the fill-wait and runs immediately instead of burning a quiet
  /// window per request. Cleared as soon as any coalescing happens or
  /// requests queue up behind a running forward.
  bool skip_fill_wait_ = false;

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> deadline_exceeded_{0};

  std::mutex join_mu_;  // serializes concurrent Shutdown() calls
  std::thread batcher_;
};

}  // namespace geotorch::serve

#endif  // GEOTORCH_SERVE_ENGINE_H_
