#include "serve/fleet.h"

#include <algorithm>
#include <utility>

#include "core/check.h"
#include "obs/obs.h"

namespace geotorch::serve {

namespace ts = ::geotorch::tensor;

Fleet::Fleet(FleetOptions options) : options_(options) {
  GEO_CHECK_GE(options_.replicas, 1);
}

Fleet::~Fleet() { Shutdown(); }

Fleet::ModelEntry* Fleet::FindModel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(models_mu_);
  for (const auto& entry : models_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Status Fleet::AddModel(const std::string& name, SnapshotFactory factory,
                       SampleSpec spec, int replicas) {
  if (factory == nullptr) {
    return Status::InvalidArgument("AddModel needs a snapshot factory");
  }
  if (replicas <= 0) replicas = options_.replicas;

  auto entry = std::make_unique<ModelEntry>();
  entry->name = name;
  entry->factory = std::move(factory);
  entry->spec = spec;
  for (int i = 0; i < replicas; ++i) {
    ModelSnapshot snap = entry->factory();
    if (snap.forward == nullptr) {
      return Status::InvalidArgument(
          "snapshot factory for model '" + name +
          "' produced a snapshot with no forward");
    }
    snap.version = 1;
    auto rep = std::make_unique<Replica>();
    rep->gauge_name =
        "fleet.queue_depth." + name + "." + std::to_string(i);
    rep->snapshot = std::make_shared<const ModelSnapshot>(std::move(snap));
    // The batcher resolves the snapshot pointer once per batch, under a
    // lock held only for the pointer copy: a reload swapping the
    // pointer can never be observed mid-forward, and the shared_ptr
    // the batch holds keeps a swapped-out snapshot alive until the
    // batch's rows are scattered (drain-and-retire).
    Replica* rep_ptr = rep.get();
    rep->engine = std::make_unique<Engine>(
        [rep_ptr](const data::Batch& batch) {
          std::shared_ptr<const ModelSnapshot> snap_ref;
          {
            std::lock_guard<std::mutex> lock(rep_ptr->snap_mu);
            snap_ref = rep_ptr->snapshot;
          }
          return snap_ref->forward(batch);
        },
        spec, options_.engine);
    entry->replicas.push_back(std::move(rep));
  }

  std::lock_guard<std::mutex> lock(models_mu_);
  for (const auto& existing : models_) {
    if (existing->name == name) {
      return Status::AlreadyExists("model '" + name +
                                   "' is already registered");
    }
  }
  models_.push_back(std::move(entry));
  return Status::OK();
}

bool Fleet::Admit(const std::string& tenant) {
  if (options_.tenant_qps <= 0) return true;
  const double qps = static_cast<double>(options_.tenant_qps);
  const double burst = options_.tenant_burst > 0
                           ? static_cast<double>(options_.tenant_burst)
                           : std::max(1.0, qps);
  const int64_t now = obs::NowNs();
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto [it, inserted] = tenants_.try_emplace(tenant);
  TenantBucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst;
  } else {
    bucket.tokens = std::min(
        burst, bucket.tokens +
                   static_cast<double>(now - bucket.last_ns) * 1e-9 * qps);
  }
  bucket.last_ns = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  return false;
}

Result<ts::Tensor> Fleet::Submit(const std::string& model,
                                 const std::string& tenant,
                                 const data::Sample& sample,
                                 int64_t deadline_us) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("fleet is shut down");
  }
  ModelEntry* entry = FindModel(model);
  if (entry == nullptr) {
    return Status::NotFound("no model named '" + model + "'");
  }
  if (!Admit(tenant)) {
    tenant_rejected_.fetch_add(1, std::memory_order_relaxed);
    GEO_OBS_COUNT("fleet.tenant_rejected", 1);
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is over its request quota (" +
        std::to_string(options_.tenant_qps) + " qps)");
  }

  // Least-queue-depth routing with round-robin tie-break: scan the
  // replicas starting from a rotating cursor and order them by
  // outstanding requests; the stable sort keeps the rotated order
  // among equals, so an idle fleet round-robins exactly. Replicas are
  // then TRIED in that order — a full replica (OutOfRange) falls
  // through to the next-least-loaded one, so callers only see
  // backpressure when every replica's queue is full.
  const size_t n = entry->replicas.size();
  std::vector<std::pair<int64_t, size_t>> order;  // (outstanding, index)
  {
    GEO_OBS_SPAN(route_span, "fleet.route");
    const uint64_t start =
        entry->rr.fetch_add(1, std::memory_order_relaxed) % n;
    order.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      const size_t idx = (start + k) % n;
      order.emplace_back(
          entry->replicas[idx]->outstanding.load(std::memory_order_relaxed),
          idx);
    }
    std::stable_sort(
        order.begin(), order.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
  GEO_OBS_COUNT("fleet.routed", 1);

  Status last_reject = Status::OutOfRange("fleet has no replicas");
  for (const auto& [depth, idx] : order) {
    Replica& rep = *entry->replicas[idx];
    const int64_t now_out =
        rep.outstanding.fetch_add(1, std::memory_order_relaxed) + 1;
    if (GEO_OBS_ON()) obs::SetGauge(rep.gauge_name, now_out);
    Result<ts::Tensor> out = rep.engine->Submit(sample, deadline_us);
    const int64_t after =
        rep.outstanding.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (GEO_OBS_ON()) obs::SetGauge(rep.gauge_name, after);
    if (out.ok() ||
        out.status().code() != StatusCode::kOutOfRange) {
      return out;  // answered, or a non-backpressure error
    }
    last_reject = out.status();
  }
  return last_reject;
}

Status Fleet::Reload(const std::string& model, const std::string& path) {
  GEO_OBS_SPAN(reload_span, "fleet.reload");
  ModelEntry* entry = FindModel(model);
  if (entry == nullptr) {
    return Status::NotFound("no model named '" + model + "'");
  }
  std::lock_guard<std::mutex> reload_lock(entry->reload_mu);
  const int64_t next_version =
      entry->version.load(std::memory_order_relaxed) + 1;

  // Phase 1 — build and load a shadow snapshot per replica while the
  // old snapshots keep serving. Any failure aborts here, before a
  // single replica swapped: a truncated or bit-flipped checkpoint
  // leaves the fleet serving the old version on every replica, never a
  // mixed-version split.
  std::vector<std::shared_ptr<const ModelSnapshot>> shadows;
  shadows.reserve(entry->replicas.size());
  for (size_t i = 0; i < entry->replicas.size(); ++i) {
    ModelSnapshot shadow = entry->factory();
    if (shadow.forward == nullptr) {
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      GEO_OBS_COUNT("fleet.reload_failed", 1);
      return Status::Internal("snapshot factory for model '" + model +
                              "' produced a snapshot with no forward");
    }
    if (shadow.load == nullptr) {
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      GEO_OBS_COUNT("fleet.reload_failed", 1);
      return Status::NotImplemented("model '" + model +
                                    "' is not hot-reloadable (snapshot "
                                    "factory wires no load hook)");
    }
    Status st = shadow.load(path);
    if (!st.ok()) {
      reload_failures_.fetch_add(1, std::memory_order_relaxed);
      GEO_OBS_COUNT("fleet.reload_failed", 1);
      return st;
    }
    shadow.version = next_version;
    shadows.push_back(
        std::make_shared<const ModelSnapshot>(std::move(shadow)));
  }

  // Phase 2 — commit: swap each replica's pointer (observed by its
  // batcher between batches, never mid-forward), then drain so that on
  // return no forward still runs the old weights. The drained
  // replica's old snapshot drops its last reference and retires.
  for (size_t i = 0; i < entry->replicas.size(); ++i) {
    Replica& rep = *entry->replicas[i];
    {
      std::lock_guard<std::mutex> lock(rep.snap_mu);
      rep.snapshot = std::move(shadows[i]);
    }
    reload_swaps_.fetch_add(1, std::memory_order_relaxed);
    GEO_OBS_COUNT("fleet.reload_swaps", 1);
  }
  for (const auto& rep : entry->replicas) rep->engine->Drain();
  entry->version.store(next_version, std::memory_order_relaxed);
  return Status::OK();
}

Result<int64_t> Fleet::ModelVersion(const std::string& model) const {
  const ModelEntry* entry = FindModel(model);
  if (entry == nullptr) {
    return Status::NotFound("no model named '" + model + "'");
  }
  return entry->version.load(std::memory_order_relaxed);
}

int Fleet::ReplicaCount(const std::string& model) const {
  const ModelEntry* entry = FindModel(model);
  return entry == nullptr ? 0 : static_cast<int>(entry->replicas.size());
}

std::vector<int64_t> Fleet::Outstanding(const std::string& model) const {
  std::vector<int64_t> depths;
  const ModelEntry* entry = FindModel(model);
  if (entry == nullptr) return depths;
  depths.reserve(entry->replicas.size());
  for (const auto& rep : entry->replicas) {
    depths.push_back(rep->outstanding.load(std::memory_order_relaxed));
  }
  return depths;
}

std::vector<EngineStats> Fleet::ReplicaStats(const std::string& model) const {
  std::vector<EngineStats> stats;
  const ModelEntry* entry = FindModel(model);
  if (entry == nullptr) return stats;
  stats.reserve(entry->replicas.size());
  for (const auto& rep : entry->replicas) {
    stats.push_back(rep->engine->stats());
  }
  return stats;
}

FleetStats Fleet::stats() const {
  FleetStats s;
  s.routed = routed_.load(std::memory_order_relaxed);
  s.tenant_rejected = tenant_rejected_.load(std::memory_order_relaxed);
  s.reload_swaps = reload_swaps_.load(std::memory_order_relaxed);
  s.reload_failures = reload_failures_.load(std::memory_order_relaxed);
  return s;
}

void Fleet::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  // Collect the entries under the lock, join the engines outside it:
  // Shutdown blocks until each batcher drains, and holding models_mu_
  // across that would stall concurrent FindModel lookups.
  std::vector<ModelEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(models_mu_);
    entries.reserve(models_.size());
    for (const auto& entry : models_) entries.push_back(entry.get());
  }
  for (ModelEntry* entry : entries) {
    for (const auto& rep : entry->replicas) rep->engine->Shutdown();
  }
}

}  // namespace geotorch::serve
