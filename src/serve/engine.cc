#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/check.h"
#include "obs/obs.h"
#include "tensor/shape.h"

namespace geotorch::serve {

namespace ts = ::geotorch::tensor;

namespace {

// Stacks per-sample tensors (each of shape `sample_shape`) into one
// (B, ...) tensor. Hand-rolled memcpy instead of tensor::Stack keeps
// the engine's dependency surface down to tensor/core/obs, which is
// what lets serve_tsan_test recompile it standalone.
template <typename GetSample>
ts::Tensor StackRows(int64_t b, const ts::Shape& sample_shape,
                     const GetSample& get) {
  ts::Shape shape;
  shape.reserve(sample_shape.size() + 1);
  shape.push_back(b);
  shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
  ts::Tensor out = ts::Tensor::Uninitialized(std::move(shape));
  const int64_t row = ts::NumElements(sample_shape);
  for (int64_t i = 0; i < b; ++i) {
    std::memcpy(out.data() + i * row, get(i).data(),
                static_cast<size_t>(row) * sizeof(float));
  }
  return out;
}

}  // namespace

Engine::Engine(BatchForward forward, SampleSpec spec, EngineOptions options)
    : forward_(std::move(forward)),
      spec_(std::move(spec)),
      options_(options) {
  GEO_CHECK(forward_ != nullptr);
  GEO_CHECK_GE(options_.max_batch, 1);
  GEO_CHECK_GE(options_.max_queue, 1);
  Warmup();
  batcher_ = std::thread([this] { BatcherLoop(); });
}

Engine::~Engine() { Shutdown(); }

void Engine::Warmup() {
  if (options_.warmup_batches <= 0) return;
  GEO_OBS_SPAN(warmup_span, "serve.warmup");
  auto batched = [this](const ts::Shape& sample_shape) {
    ts::Shape shape;
    shape.reserve(sample_shape.size() + 1);
    shape.push_back(options_.max_batch);
    shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());
    return ts::Tensor::Zeros(std::move(shape));
  };
  data::Batch batch;
  batch.x = batched(spec_.x);
  for (const auto& extra_shape : spec_.extras) {
    batch.extras.push_back(batched(extra_shape));
  }
  batch.size = options_.max_batch;
  for (int i = 0; i < options_.warmup_batches; ++i) forward_(batch);
}

Result<ts::Tensor> Engine::Submit(const data::Sample& sample,
                                  int64_t deadline_us) {
  if (!ts::SameShape(sample.x.shape(), spec_.x)) {
    return Status::InvalidArgument(
        "sample shape " + ts::ShapeToString(sample.x.shape()) +
        " does not match engine spec " + ts::ShapeToString(spec_.x));
  }
  if (sample.extras.size() != spec_.extras.size()) {
    return Status::InvalidArgument(
        "sample has " + std::to_string(sample.extras.size()) +
        " extras, engine spec expects " +
        std::to_string(spec_.extras.size()));
  }
  for (size_t e = 0; e < sample.extras.size(); ++e) {
    if (!ts::SameShape(sample.extras[e].shape(), spec_.extras[e])) {
      return Status::InvalidArgument(
          "extra " + std::to_string(e) + " shape mismatch: " +
          ts::ShapeToString(sample.extras[e].shape()) + " vs spec " +
          ts::ShapeToString(spec_.extras[e]));
    }
  }

  const int64_t t0 = obs::NowNs();
  std::future<ts::Tensor> fut;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return Status::InvalidArgument("engine is shut down");
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      GEO_OBS_COUNT("serve.rejected", 1);
      return Status::OutOfRange(
          "serve queue full (" + std::to_string(options_.max_queue) +
          " waiting) — backpressure, retry later");
    }
    Request req;
    req.sample = sample;
    req.enqueue_ns = t0;
    fut = req.promise.get_future();
    queue_.push_back(std::move(req));
    requests_.fetch_add(1, std::memory_order_relaxed);
    GEO_OBS_COUNT("serve.requests", 1);
    if (GEO_OBS_ON()) {
      obs::SetGauge("serve.queue_depth",
                    static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();

  if (deadline_us > 0) {
    // Abandoning the future is safe: the promise keeps the shared state
    // alive, so the batcher's set_value after this return is a no-op
    // from our perspective, and the request still advances answered_
    // (Drain's contract is unchanged).
    if (fut.wait_for(std::chrono::microseconds(deadline_us)) !=
        std::future_status::ready) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      GEO_OBS_COUNT("serve.deadline_exceeded", 1);
      return Status::DeadlineExceeded(
          "request not answered within " + std::to_string(deadline_us) +
          "us (queued behind a stalled or overloaded batcher)");
    }
  }
  ts::Tensor out = fut.get();
  GEO_OBS_HIST("serve.latency_us", (obs::NowNs() - t0) / 1000);
  return out;
}

void Engine::BatcherLoop() {
  for (;;) {
    std::vector<Request> taken;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty() && draining_) return;
      // A request is waiting. Give the batch up to max_delay_us —
      // counted from the oldest request's enqueue — to fill before
      // running it partial. Concurrent clients arrive within
      // microseconds of each other, so once a quiet window passes
      // with no new arrival the queue has stopped growing and waiting
      // longer only adds latency (with fewer clients than max_batch
      // the batch would never fill and every cycle would burn the
      // whole budget): run what we have. The window is 1/16 of the
      // budget — wide enough to catch back-to-back submits, narrow
      // enough that an unfillable batch costs little dead time.
      // Drain skips the wait entirely, and so does a stream that just
      // proved it cannot coalesce (skip_fill_wait_, set by RunBatch):
      // a lone sequential client submits only after the previous
      // reply, so even one quiet window per request is pure added
      // latency — run immediately until batching pressure reappears.
      const int64_t deadline_ns =
          queue_.front().enqueue_ns +
          static_cast<int64_t>(options_.max_delay_us) * 1000;
      const int64_t quiet_ns =
          std::max<int64_t>(1000, options_.max_delay_us * 1000 / 16);
      while (!skip_fill_wait_ &&
             static_cast<int>(queue_.size()) < options_.max_batch &&
             !draining_) {
        const int64_t now = obs::NowNs();
        if (now >= deadline_ns) break;
        const size_t before = queue_.size();
        cv_.wait_for(lock, std::chrono::nanoseconds(
                               std::min(deadline_ns - now, quiet_ns)));
        if (queue_.size() == before) break;  // no arrivals: stop waiting
      }
      const size_t take =
          std::min(queue_.size(), static_cast<size_t>(options_.max_batch));
      taken.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (GEO_OBS_ON()) {
        obs::SetGauge("serve.queue_depth",
                      static_cast<int64_t>(queue_.size()));
      }
    }
    RunBatch(std::move(taken));
  }
}

void Engine::RunBatch(std::vector<Request> requests) {
  GEO_OBS_SPAN(batch_span, "serve.batch");
  const int64_t b = static_cast<int64_t>(requests.size());

  data::Batch batch;
  batch.x = StackRows(b, spec_.x, [&requests](int64_t i) -> const ts::Tensor& {
    return requests[i].sample.x;
  });
  for (size_t e = 0; e < spec_.extras.size(); ++e) {
    batch.extras.push_back(StackRows(
        b, spec_.extras[e], [&requests, e](int64_t i) -> const ts::Tensor& {
          return requests[i].sample.extras[e];
        }));
  }
  batch.size = b;

  ts::Tensor out;
  {
    GEO_OBS_SPAN(fwd_span, "serve.forward");
    out = forward_(batch);
  }
  GEO_CHECK(out.ndim() >= 1 && out.size(0) == b)
      << "BatchForward must return one output row per request";

  // Account the batch BEFORE releasing any waiter: a caller that
  // returns from Submit must observe this batch in stats().
  batches_.fetch_add(1, std::memory_order_relaxed);
  GEO_OBS_COUNT("serve.batches", 1);
  GEO_OBS_HIST("serve.batch_size", b);

  // Decide the next cycle's fill-wait BEFORE any promise is fulfilled:
  // once a waiter wakes it may resubmit instantly, and that follow-up
  // from a non-coalescing client must not be mistaken for batching
  // pressure. A singleton batch that left the queue empty means the
  // fill-wait gained nothing — skip it next cycle. Any coalescing at
  // all (b > 1), or requests queued behind this forward, re-arms the
  // wait; partial-but-plural batches (say 4 steady clients under
  // max_batch 16) keep their quiet window, because for them it is
  // what makes batching happen.
  {
    std::lock_guard<std::mutex> lock(mu_);
    skip_fill_wait_ = b == 1 && queue_.empty();
  }

  ts::Shape row_shape(out.shape().begin() + 1, out.shape().end());
  if (row_shape.empty()) row_shape = {1};
  const int64_t row = ts::NumElements(row_shape);
  for (int64_t i = 0; i < b; ++i) {
    ts::Tensor slice = ts::Tensor::Uninitialized(row_shape);
    std::memcpy(slice.data(), out.data() + i * row,
                static_cast<size_t>(row) * sizeof(float));
    requests[i].promise.set_value(std::move(slice));
  }

  // Advance the answered count only after every promise of this batch
  // holds its value: Drain's contract is "answered", not "dequeued",
  // so a drainer released here can rely on all b callers having their
  // results committed.
  {
    std::lock_guard<std::mutex> lock(mu_);
    answered_ += b;
  }
  drained_cv_.notify_all();
}

void Engine::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Everything accepted so far — queued or mid-batch. Snapshot once:
  // submits racing this drain raise requests_ but not the target, so
  // the wait below cannot be extended (no starvation under load).
  const int64_t target = requests_.load(std::memory_order_relaxed);
  drained_cv_.wait(lock, [this, target] { return answered_ >= target; });
}

int Engine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void Engine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (batcher_.joinable()) batcher_.join();
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace geotorch::serve
