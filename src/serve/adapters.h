#ifndef GEOTORCH_SERVE_ADAPTERS_H_
#define GEOTORCH_SERVE_ADAPTERS_H_

#include "models/grid_models.h"
#include "models/raster_models.h"
#include "nn/module.h"
#include "serve/engine.h"

namespace geotorch::serve {

/// Adapters wrapping this repo's model families as Engine::BatchForward
/// closures. Each puts the model in eval mode once and runs every
/// forward under NoGradGuard — serving never records tape. The caller
/// keeps ownership of the model and must outlive the Engine.

/// Grid predictors (PeriodicalCnn, ConvLstm, StResNet, DeepStnPlus):
/// the whole Batch (x + extras) goes to Forward.
Engine::BatchForward GridForward(models::GridModel& model);

/// Raster classifiers (SatCnn, DeepSat, DeepSatV2): batch.x is the
/// image stack; batch.extras[0], when present, is the handcrafted
/// feature matrix (DeepSAT-V2), otherwise features are empty.
Engine::BatchForward ClassifierForward(models::RasterClassifier& model);

/// Single-input models (Fcn, UNet, UNetPlusPlus and any UnaryModule):
/// batch.x in, output out; extras are ignored.
Engine::BatchForward UnaryForward(nn::UnaryModule& model);

}  // namespace geotorch::serve

#endif  // GEOTORCH_SERVE_ADAPTERS_H_
