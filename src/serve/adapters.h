#ifndef GEOTORCH_SERVE_ADAPTERS_H_
#define GEOTORCH_SERVE_ADAPTERS_H_

#include "models/grid_models.h"
#include "models/raster_models.h"
#include "nn/module.h"
#include "serve/engine.h"

namespace geotorch::serve {

/// Adapters wrapping this repo's model families as Engine::BatchForward
/// closures. Each puts the model in eval mode once, applies the
/// requested serving precision (f32 default; bf16 / int8 quantize and
/// panel-pack the weights right here, once, so per-request forwards pay
/// no conversion — DESIGN.md §10), and runs every forward under
/// NoGradGuard — serving never records tape. The caller keeps
/// ownership of the model and must outlive the Engine. Wire
/// EngineOptions::FromEnv().precision through to honor
/// GEOTORCH_SERVE_PRECISION.

/// Grid predictors (PeriodicalCnn, ConvLstm, StResNet, DeepStnPlus):
/// the whole Batch (x + extras) goes to Forward.
Engine::BatchForward GridForward(models::GridModel& model,
                                 nn::Precision precision = nn::Precision::kF32);

/// Raster classifiers (SatCnn, DeepSat, DeepSatV2): batch.x is the
/// image stack; batch.extras[0], when present, is the handcrafted
/// feature matrix (DeepSAT-V2), otherwise features are empty.
Engine::BatchForward ClassifierForward(
    models::RasterClassifier& model,
    nn::Precision precision = nn::Precision::kF32);

/// Single-input models (Fcn, UNet, UNetPlusPlus and any UnaryModule):
/// batch.x in, output out; extras are ignored.
Engine::BatchForward UnaryForward(nn::UnaryModule& model,
                                  nn::Precision precision = nn::Precision::kF32);

}  // namespace geotorch::serve

#endif  // GEOTORCH_SERVE_ADAPTERS_H_
