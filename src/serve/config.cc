#include "serve/config.h"

#include <cstdlib>
#include <string>

#include "core/env.h"

namespace geotorch::serve {

EngineOptions EngineOptions::FromEnv() {
  EngineOptions opts;
  opts.max_batch = EnvInt("GEOTORCH_SERVE_MAX_BATCH", opts.max_batch, 1);
  opts.max_delay_us =
      EnvInt("GEOTORCH_SERVE_MAX_DELAY_US", opts.max_delay_us, 0);
  opts.max_queue = EnvInt("GEOTORCH_SERVE_MAX_QUEUE", opts.max_queue, 1);
  opts.warmup_batches =
      EnvInt("GEOTORCH_SERVE_WARMUP", opts.warmup_batches, 0);
  if (const char* env = std::getenv("GEOTORCH_SERVE_PRECISION");
      env != nullptr && *env != '\0') {
    nn::ParsePrecision(std::string(env), &opts.precision);
  }
  return opts;
}

FleetOptions FleetOptions::FromEnv() {
  FleetOptions opts;
  opts.replicas = EnvInt("GEOTORCH_FLEET_REPLICAS", opts.replicas, 1);
  opts.tenant_qps = EnvInt("GEOTORCH_FLEET_TENANT_QPS", opts.tenant_qps, 0);
  opts.tenant_burst =
      EnvInt("GEOTORCH_FLEET_TENANT_BURST", opts.tenant_burst, 0);
  opts.engine = EngineOptions::FromEnv();
  return opts;
}

}  // namespace geotorch::serve
