#include "serve/config.h"

#include <cstdlib>
#include <string>

namespace geotorch::serve {
namespace {

// Reads an integer env var; returns `fallback` when unset or when the
// value does not start with a digit (or '-').
int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<int>(v);
}

int ClampMin(int v, int lo) { return v < lo ? lo : v; }

}  // namespace

EngineOptions EngineOptions::FromEnv() {
  EngineOptions opts;
  opts.max_batch =
      ClampMin(EnvInt("GEOTORCH_SERVE_MAX_BATCH", opts.max_batch), 1);
  opts.max_delay_us =
      ClampMin(EnvInt("GEOTORCH_SERVE_MAX_DELAY_US", opts.max_delay_us), 0);
  opts.max_queue =
      ClampMin(EnvInt("GEOTORCH_SERVE_MAX_QUEUE", opts.max_queue), 1);
  opts.warmup_batches =
      ClampMin(EnvInt("GEOTORCH_SERVE_WARMUP", opts.warmup_batches), 0);
  if (const char* env = std::getenv("GEOTORCH_SERVE_PRECISION");
      env != nullptr && *env != '\0') {
    nn::ParsePrecision(std::string(env), &opts.precision);
  }
  return opts;
}

FleetOptions FleetOptions::FromEnv() {
  FleetOptions opts;
  opts.replicas =
      ClampMin(EnvInt("GEOTORCH_FLEET_REPLICAS", opts.replicas), 1);
  opts.tenant_qps =
      ClampMin(EnvInt("GEOTORCH_FLEET_TENANT_QPS", opts.tenant_qps), 0);
  opts.tenant_burst =
      ClampMin(EnvInt("GEOTORCH_FLEET_TENANT_BURST", opts.tenant_burst), 0);
  opts.engine = EngineOptions::FromEnv();
  return opts;
}

}  // namespace geotorch::serve
