#ifndef GEOTORCH_SERVE_CONFIG_H_
#define GEOTORCH_SERVE_CONFIG_H_

#include "nn/precision.h"

namespace geotorch::serve {

/// Dynamic micro-batcher knobs (DESIGN.md §9). FromEnv() overrides the
/// compiled-in defaults with the GEOTORCH_SERVE_* environment family,
/// following the spatial/config conventions:
///
///   GEOTORCH_SERVE_MAX_BATCH     coalesce at most this many requests
///                                into one forward (default 16)
///   GEOTORCH_SERVE_MAX_DELAY_US  how long the batcher waits for a
///                                partial batch to fill before running
///                                it anyway (default 200)
///   GEOTORCH_SERVE_MAX_QUEUE     bounded request-queue capacity;
///                                submits beyond it are rejected with a
///                                Status — backpressure, not unbounded
///                                memory (default 256)
///   GEOTORCH_SERVE_WARMUP        full-size warmup forwards run at
///                                engine construction, so the first
///                                real request does not pay pool /
///                                workspace cold-start (default 2)
///   GEOTORCH_SERVE_PRECISION     numeric mode the served model runs
///                                its GEMMs in: "f32" (default),
///                                "bf16", or "int8" (DESIGN.md §10).
///                                Applied by the serve/adapters.h
///                                factories at model-wrap time, which
///                                is when int8 weights are quantized
///                                and panel-packed; unknown values are
///                                ignored
struct EngineOptions {
  int max_batch = 16;
  int max_delay_us = 200;
  int max_queue = 256;
  int warmup_batches = 2;
  nn::Precision precision = nn::Precision::kF32;

  /// Defaults overridden by any GEOTORCH_SERVE_* variables present.
  /// Values are clamped to sane minimums (max_batch/max_queue >= 1,
  /// max_delay_us/warmup_batches >= 0); unparsable text is ignored.
  static EngineOptions FromEnv();
};

/// Knobs for the sharded, replicated serving fleet (serve/fleet.h,
/// DESIGN.md §11). FromEnv() reads the GEOTORCH_FLEET_* family and
/// nests EngineOptions::FromEnv(), so one environment configures both
/// layers:
///
///   GEOTORCH_FLEET_REPLICAS      engines spun up per registered model
///                                when AddModel does not override it
///                                (default 2)
///   GEOTORCH_FLEET_TENANT_QPS    per-tenant admission rate in requests
///                                per second, enforced by a token
///                                bucket at the router; 0 disables
///                                quotas entirely (default 0)
///   GEOTORCH_FLEET_TENANT_BURST  token-bucket capacity — how many
///                                requests a tenant may burst above the
///                                steady rate; 0 means max(1, qps)
///                                (default 0)
struct FleetOptions {
  int replicas = 2;
  int tenant_qps = 0;
  int tenant_burst = 0;
  /// Per-replica engine knobs; every replica of every model shares
  /// these.
  EngineOptions engine;

  /// Defaults overridden by any GEOTORCH_FLEET_* / GEOTORCH_SERVE_*
  /// variables present. replicas is clamped to >= 1, the tenant knobs
  /// to >= 0; unparsable text is ignored.
  static FleetOptions FromEnv();
};

}  // namespace geotorch::serve

#endif  // GEOTORCH_SERVE_CONFIG_H_
