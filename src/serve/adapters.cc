#include "serve/adapters.h"

#include "autograd/variable.h"
#include "obs/obs.h"
#include "tensor/fusion.h"

namespace geotorch::serve {

namespace ag = ::geotorch::autograd;

namespace {

// Every adapter puts the model in eval mode with gradients disabled,
// which is exactly the gate for the fused eval path (BN folding, GEMM
// bias+activation epilogues, im2col-free 1x1 conv) — so Engine and
// Fleet serve fused by default unless GEOTORCH_FUSION=0. The gauge
// makes the active setting visible in /obs output.
void PublishFusionGauge() {
  obs::SetGauge("fusion.enabled", tensor::FusionEnabled() ? 1 : 0);
}

}  // namespace

Engine::BatchForward GridForward(models::GridModel& model,
                                 nn::Precision precision) {
  PublishFusionGauge();
  model.SetTraining(false);
  model.SetPrecision(precision);
  return [&model](const data::Batch& batch) {
    ag::NoGradGuard no_grad;
    return model.Forward(batch).value();
  };
}

Engine::BatchForward ClassifierForward(models::RasterClassifier& model,
                                       nn::Precision precision) {
  PublishFusionGauge();
  model.SetTraining(false);
  model.SetPrecision(precision);
  return [&model](const data::Batch& batch) {
    ag::NoGradGuard no_grad;
    ag::Variable x(batch.x);
    ag::Variable features = batch.extras.empty()
                                ? ag::Variable()
                                : ag::Variable(batch.extras[0]);
    return model.Forward(x, features).value();
  };
}

Engine::BatchForward UnaryForward(nn::UnaryModule& model,
                                  nn::Precision precision) {
  PublishFusionGauge();
  model.SetTraining(false);
  model.SetPrecision(precision);
  return [&model](const data::Batch& batch) {
    ag::NoGradGuard no_grad;
    return model.Forward(ag::Variable(batch.x)).value();
  };
}

}  // namespace geotorch::serve
