#include "serve/adapters.h"

#include "autograd/variable.h"

namespace geotorch::serve {

namespace ag = ::geotorch::autograd;

Engine::BatchForward GridForward(models::GridModel& model,
                                 nn::Precision precision) {
  model.SetTraining(false);
  model.SetPrecision(precision);
  return [&model](const data::Batch& batch) {
    ag::NoGradGuard no_grad;
    return model.Forward(batch).value();
  };
}

Engine::BatchForward ClassifierForward(models::RasterClassifier& model,
                                       nn::Precision precision) {
  model.SetTraining(false);
  model.SetPrecision(precision);
  return [&model](const data::Batch& batch) {
    ag::NoGradGuard no_grad;
    ag::Variable x(batch.x);
    ag::Variable features = batch.extras.empty()
                                ? ag::Variable()
                                : ag::Variable(batch.extras[0]);
    return model.Forward(x, features).value();
  };
}

Engine::BatchForward UnaryForward(nn::UnaryModule& model,
                                  nn::Precision precision) {
  model.SetTraining(false);
  model.SetPrecision(precision);
  return [&model](const data::Batch& batch) {
    ag::NoGradGuard no_grad;
    return model.Forward(ag::Variable(batch.x)).value();
  };
}

}  // namespace geotorch::serve
