#ifndef GEOTORCH_DF_CSV_H_
#define GEOTORCH_DF_CSV_H_

#include <string>

#include "core/status.h"
#include "df/dataframe.h"

namespace geotorch::df {

/// Writes a DataFrame to CSV (header row; geometry columns as
/// "x;y"). Partitions are written in order.
Status WriteCsv(const DataFrame& frame, const std::string& path);

struct CsvReadOptions {
  /// When > 0, the reader flushes a completed partition every
  /// `rows_per_partition` rows instead of materializing the whole file
  /// into one partition. Each flushed partition registers with the
  /// PartitionStore immediately, so under a resident budget an
  /// arbitrarily large CSV ingests with bounded memory — cold chunks
  /// spill to GTDF while the tail of the file is still being parsed.
  /// 0 (default) preserves the single-partition behavior.
  int64_t rows_per_partition = 0;
};

/// Reads a CSV produced by WriteCsv (or any headered CSV whose columns
/// match `schema` in order). With default options the result has one
/// partition; call Repartition() for parallelism, or set
/// `options.rows_per_partition` to partition (and spill) during the
/// read itself.
Result<DataFrame> ReadCsv(const std::string& path, const Schema& schema,
                          const CsvReadOptions& options = {});

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_CSV_H_
