#ifndef GEOTORCH_DF_CSV_H_
#define GEOTORCH_DF_CSV_H_

#include <string>

#include "core/status.h"
#include "df/dataframe.h"

namespace geotorch::df {

/// Writes a DataFrame to CSV (header row; geometry columns as
/// "x;y"). Partitions are written in order.
Status WriteCsv(const DataFrame& frame, const std::string& path);

/// Reads a CSV produced by WriteCsv (or any headered CSV whose columns
/// match `schema` in order). The result has one partition; call
/// Repartition() for parallelism.
Result<DataFrame> ReadCsv(const std::string& path, const Schema& schema);

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_CSV_H_
