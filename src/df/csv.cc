#include "df/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace geotorch::df {

Status WriteCsv(const DataFrame& frame, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const Schema& schema = frame.schema();
  for (int c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out << ',';
    out << schema.name(c);
  }
  out << '\n';
  for (int pi = 0; pi < frame.num_partitions(); ++pi) {
    const Partition& part = frame.partition(pi);
    Partition::Pin pin(part);
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      for (int c = 0; c < schema.num_fields(); ++c) {
        if (c > 0) out << ',';
        switch (schema.type(c)) {
          case DataType::kDouble:
            out << part.column(c).doubles()[r];
            break;
          case DataType::kInt64:
            out << part.column(c).int64s()[r];
            break;
          case DataType::kString:
            out << part.column(c).strings()[r];
            break;
          case DataType::kGeometry: {
            const auto& p = part.column(c).points()[r];
            out << p.x << ';' << p.y;
            break;
          }
        }
      }
      out << '\n';
    }
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<DataFrame> ReadCsv(const std::string& path, const Schema& schema,
                          const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty CSV: " + path);
  }
  std::vector<Column> cols;
  for (int c = 0; c < schema.num_fields(); ++c) {
    cols.emplace_back(schema.type(c));
  }
  std::vector<std::shared_ptr<const Partition>> partitions;
  int64_t chunk_rows = 0;
  // Hands the accumulated columns off as a finished partition — which
  // registers with the PartitionStore, so a budget can spill it while
  // the rest of the file is still streaming through the parser.
  const auto flush = [&] {
    partitions.push_back(std::make_shared<Partition>(std::move(cols)));
    cols.clear();
    for (int c = 0; c < schema.num_fields(); ++c) {
      cols.emplace_back(schema.type(c));
    }
    chunk_rows = 0;
  };
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    for (int c = 0; c < schema.num_fields(); ++c) {
      if (!std::getline(ss, cell, ',')) {
        return Status::IoError("short row at line " +
                               std::to_string(line_no) + " in " + path);
      }
      switch (schema.type(c)) {
        case DataType::kDouble:
          cols[c].mutable_doubles().push_back(std::stod(cell));
          break;
        case DataType::kInt64:
          cols[c].mutable_int64s().push_back(std::stoll(cell));
          break;
        case DataType::kString:
          cols[c].mutable_strings().push_back(cell);
          break;
        case DataType::kGeometry: {
          const size_t semi = cell.find(';');
          if (semi == std::string::npos) {
            return Status::IoError("bad geometry cell at line " +
                                   std::to_string(line_no));
          }
          spatial::Point p;
          p.x = std::stod(cell.substr(0, semi));
          p.y = std::stod(cell.substr(semi + 1));
          cols[c].mutable_points().push_back(p);
          break;
        }
      }
    }
    if (options.rows_per_partition > 0 &&
        ++chunk_rows >= options.rows_per_partition) {
      flush();
    }
  }
  if (partitions.empty()) {
    std::vector<std::pair<std::string, Column>> named;
    for (int c = 0; c < schema.num_fields(); ++c) {
      named.emplace_back(schema.name(c), std::move(cols[c]));
    }
    return DataFrame::FromColumns(std::move(named));
  }
  if (chunk_rows > 0) flush();
  return DataFrame::FromPartitions(
      std::make_shared<Schema>(schema.fields()), std::move(partitions));
}

}  // namespace geotorch::df
