#include "df/gtdf.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "core/check.h"
#include "io/crc32.h"

namespace geotorch::df {
namespace {

constexpr char kMagic[4] = {'G', 'T', 'D', 'F'};
// Sanity bounds: a directory that claims more than this is corrupt,
// not merely large (partitions are horizontal slices, not warehouses).
constexpr uint32_t kMaxColumns = 65536;
constexpr int64_t kMaxRows = int64_t{1} << 40;

constexpr size_t kHeaderSize =
    sizeof(kMagic) + 2 * sizeof(uint32_t) + sizeof(int64_t);
constexpr size_t kDirEntrySize = 1 + 2 * sizeof(uint64_t);

// Geometry payloads are reinterpret_cast straight out of the file
// image, so the in-memory Point layout IS the on-disk layout.
static_assert(std::is_trivially_copyable_v<spatial::Point> &&
                  sizeof(spatial::Point) == 2 * sizeof(double),
              "GTDF geometry payload requires Point == {f64 x, f64 y}");

size_t AlignUp8(size_t n) { return (n + 7) & ~size_t{7}; }

int64_t FixedElemSize(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return sizeof(double);
    case DataType::kInt64:
      return sizeof(int64_t);
    case DataType::kGeometry:
      return sizeof(spatial::Point);
    case DataType::kString:
      return 0;
  }
  return 0;
}

// Streams bytes to a file while chaining the CRC over everything
// written, so spilling never buffers a second copy of the partition.
class CrcFile {
 public:
  explicit CrcFile(std::FILE* f) : f_(f) {}
  void Write(const void* p, size_t n) {
    if (!ok_ || n == 0) return;
    if (std::fwrite(p, 1, n, f_) != n) {
      ok_ = false;
      return;
    }
    crc_ = io::Crc32(p, n, crc_);
  }
  template <typename T>
  void Put(const T& v) {
    Write(&v, sizeof(T));
  }
  void Pad(size_t n) {
    static const unsigned char zeros[8] = {};
    GEO_CHECK_LE(n, sizeof(zeros));
    Write(zeros, n);
  }
  bool ok() const { return ok_; }
  uint32_t crc() const { return crc_; }

 private:
  std::FILE* f_;
  uint32_t crc_ = 0;
  bool ok_ = true;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IoError("corrupt GTDF partition " + path + ": " + what);
}

// The file image a faulted-in partition's view columns borrow from:
// an mmap when the platform grants one, a plain heap buffer read with
// positioned reads otherwise. Destroyed when the last view column of
// the partition is dropped (the columns hold it as their keepalive).
class FileImage {
 public:
  ~FileImage() {
    if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
  }
  FileImage(const FileImage&) = delete;
  FileImage& operator=(const FileImage&) = delete;

  static Result<std::shared_ptr<FileImage>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IoError("cannot open for read: " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("cannot stat: " + path);
    }
    auto image = std::shared_ptr<FileImage>(new FileImage());
    image->size_ = static_cast<size_t>(st.st_size);
    if (image->size_ > 0) {
      void* base = ::mmap(nullptr, image->size_, PROT_READ, MAP_PRIVATE, fd,
                          0);
      if (base != MAP_FAILED) {
        image->map_base_ = base;
        image->map_size_ = image->size_;
        image->data_ = static_cast<const unsigned char*>(base);
      } else {
        // pread fallback: same bytes, same spans, just not demand-paged.
        image->heap_.resize(image->size_);
        size_t done = 0;
        while (done < image->size_) {
          const ssize_t n =
              ::pread(fd, image->heap_.data() + done, image->size_ - done,
                      static_cast<off_t>(done));
          if (n <= 0) {
            ::close(fd);
            return Status::IoError("read failed: " + path);
          }
          done += static_cast<size_t>(n);
        }
        image->data_ = image->heap_.data();
      }
    }
    ::close(fd);
    return image;
  }

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return map_base_ != nullptr; }

 private:
  FileImage() = default;

  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;
  size_t map_size_ = 0;
  std::vector<unsigned char> heap_;
};

}  // namespace

Status WriteGtdf(const std::string& path,
                 const std::vector<std::shared_ptr<const Column>>& columns,
                 int64_t num_rows) {
  GEO_CHECK_LE(columns.size(), static_cast<size_t>(kMaxColumns));
  // Directory first: payload offsets are known before any byte lands.
  struct Entry {
    uint8_t type;
    uint64_t offset;
    uint64_t size;
  };
  std::vector<Entry> dir(columns.size());
  size_t at = AlignUp8(kHeaderSize + columns.size() * kDirEntrySize);
  for (size_t c = 0; c < columns.size(); ++c) {
    const Column& col = *columns[c];
    GEO_CHECK_EQ(col.size(), num_rows) << "ragged partition in WriteGtdf";
    uint64_t payload;
    if (col.type() == DataType::kString) {
      uint64_t blob = 0;
      for (const auto& s : col.strings()) blob += s.size();
      payload = (static_cast<uint64_t>(num_rows) + 1) * sizeof(uint64_t) +
                blob;
    } else {
      payload = static_cast<uint64_t>(num_rows) *
                static_cast<uint64_t>(FixedElemSize(col.type()));
    }
    dir[c] = {static_cast<uint8_t>(col.type()), at, payload};
    at = AlignUp8(at + payload);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  CrcFile out(f);
  out.Write(kMagic, sizeof(kMagic));
  out.Put(kGtdfVersion);
  out.Put(static_cast<uint32_t>(columns.size()));
  out.Put(num_rows);
  for (const Entry& e : dir) {
    out.Put(e.type);
    out.Put(e.offset);
    out.Put(e.size);
  }
  size_t written = kHeaderSize + columns.size() * kDirEntrySize;
  for (size_t c = 0; c < columns.size(); ++c) {
    out.Pad(dir[c].offset - written);
    const Column& col = *columns[c];
    switch (col.type()) {
      case DataType::kDouble: {
        const auto v = col.doubles();
        out.Write(v.data(), v.size() * sizeof(double));
        break;
      }
      case DataType::kInt64: {
        const auto v = col.int64s();
        out.Write(v.data(), v.size() * sizeof(int64_t));
        break;
      }
      case DataType::kGeometry: {
        const auto v = col.points();
        out.Write(v.data(), v.size() * sizeof(spatial::Point));
        break;
      }
      case DataType::kString: {
        const auto v = col.strings();
        std::vector<uint64_t> offsets;
        offsets.reserve(v.size() + 1);
        uint64_t off = 0;
        offsets.push_back(off);
        for (const auto& s : v) {
          off += s.size();
          offsets.push_back(off);
        }
        out.Write(offsets.data(), offsets.size() * sizeof(uint64_t));
        for (const auto& s : v) out.Write(s.data(), s.size());
        break;
      }
    }
    written = dir[c].offset + dir[c].size;
  }
  const uint32_t crc = out.crc();
  out.Put(crc);
  const bool ok = out.ok() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(path.c_str());
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<GtdfPartition> ReadGtdf(const std::string& path) {
  std::shared_ptr<FileImage> image;
  {
    auto opened = FileImage::Open(path);
    if (!opened.ok()) return opened.status();
    image = std::move(opened).ValueOrDie();
  }
  const unsigned char* data = image->data();
  const size_t size = image->size();
  if (size < kHeaderSize + sizeof(uint32_t)) {
    return Corrupt(path, "file shorter than header + CRC trailer");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a GTDF partition: " + path);
  }
  // CRC over everything before the trailer, validated before any field
  // beyond the magic is interpreted.
  const size_t body_size = size - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data + body_size, sizeof(stored_crc));
  if (stored_crc != io::Crc32(data, body_size)) {
    return Corrupt(path, "CRC mismatch (file damaged or truncated)");
  }

  uint32_t version = 0;
  uint32_t num_columns = 0;
  int64_t num_rows = 0;
  std::memcpy(&version, data + 4, sizeof(version));
  std::memcpy(&num_columns, data + 8, sizeof(num_columns));
  std::memcpy(&num_rows, data + 12, sizeof(num_rows));
  if (version == 0 || version > kGtdfVersion) {
    return Status::InvalidArgument(
        "GTDF version " + std::to_string(version) + " not supported (max " +
        std::to_string(kGtdfVersion) + "): " + path);
  }
  if (num_columns > kMaxColumns) return Corrupt(path, "column count");
  if (num_rows < 0 || num_rows > kMaxRows) return Corrupt(path, "row count");
  const size_t dir_end = kHeaderSize + num_columns * kDirEntrySize;
  if (dir_end > body_size) return Corrupt(path, "directory truncated");

  GtdfPartition out;
  out.num_rows = num_rows;
  out.via_mmap = image->mapped();
  out.columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    const unsigned char* e = data + kHeaderSize + c * kDirEntrySize;
    const uint8_t raw_type = *e;
    uint64_t offset = 0;
    uint64_t payload = 0;
    std::memcpy(&offset, e + 1, sizeof(offset));
    std::memcpy(&payload, e + 9, sizeof(payload));
    if (raw_type > static_cast<uint8_t>(DataType::kGeometry)) {
      return Corrupt(path, "unknown column type");
    }
    const DataType type = static_cast<DataType>(raw_type);
    if (offset % 8 != 0 || offset < dir_end || offset > body_size ||
        payload > body_size - offset) {
      return Corrupt(path, "column payload out of bounds");
    }
    const unsigned char* p = data + offset;
    if (type == DataType::kString) {
      const uint64_t offsets_bytes =
          (static_cast<uint64_t>(num_rows) + 1) * sizeof(uint64_t);
      if (payload < offsets_bytes) {
        return Corrupt(path, "string offsets truncated");
      }
      const uint64_t blob_size = payload - offsets_bytes;
      const unsigned char* blob = p + offsets_bytes;
      std::vector<std::string> values;
      values.reserve(num_rows);
      uint64_t prev = 0;
      std::memcpy(&prev, p, sizeof(prev));
      if (prev != 0) return Corrupt(path, "string offsets must start at 0");
      for (int64_t r = 0; r < num_rows; ++r) {
        uint64_t next = 0;
        std::memcpy(&next, p + (r + 1) * sizeof(uint64_t), sizeof(next));
        if (next < prev || next > blob_size) {
          return Corrupt(path, "non-monotonic string offsets");
        }
        values.emplace_back(reinterpret_cast<const char*>(blob) + prev,
                            next - prev);
        prev = next;
      }
      out.columns.push_back(Column::FromStrings(std::move(values)));
    } else {
      const uint64_t expect = static_cast<uint64_t>(num_rows) *
                              static_cast<uint64_t>(FixedElemSize(type));
      if (payload != expect) return Corrupt(path, "column payload size");
      switch (type) {
        case DataType::kDouble:
          out.columns.push_back(Column::ViewDoubles(
              reinterpret_cast<const double*>(p), num_rows, image));
          break;
        case DataType::kInt64:
          out.columns.push_back(Column::ViewInt64s(
              reinterpret_cast<const int64_t*>(p), num_rows, image));
          break;
        case DataType::kGeometry:
          out.columns.push_back(Column::ViewPoints(
              reinterpret_cast<const spatial::Point*>(p), num_rows, image));
          break;
        case DataType::kString:
          break;  // handled above
      }
    }
  }
  return out;
}

}  // namespace geotorch::df
