#ifndef GEOTORCH_DF_PARTITION_STORE_H_
#define GEOTORCH_DF_PARTITION_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace geotorch::df {

class Partition;

/// Process-wide residency manager for DataFrame partitions — the
/// out-of-core layer under `src/df` (DESIGN.md §12). Every Partition
/// created while the store is enabled registers here; when the summed
/// bytes of resident partitions exceed the budget, the coldest
/// unpinned partitions are spilled to GTDF files in the spill
/// directory and their columns dropped. Touching a spilled partition
/// faults it back in (fixed-width columns as zero-copy spans over the
/// mmap'ed file), re-admits it at the hot end of the LRU, and may in
/// turn evict someone else. Pinned partitions (Partition::Pin — taken
/// automatically by ForEachPartition and by every multi-partition op)
/// are never evicted, so partition-parallel workers cannot observe a
/// column disappearing mid-scan.
///
/// Knobs (read once at first use; Configure() overrides):
///   GEOTORCH_DF_SPILL=0        kill switch — partitions never register
///   GEOTORCH_DF_RESIDENT_MB=N  resident-set byte budget (default: no
///                              budget, so nothing ever spills)
///   GEOTORCH_DF_SPILL_DIR=dir  spill directory (default geotorch_spill)
class PartitionStore {
 public:
  struct Options {
    /// When false, partitions do not register and the engine behaves
    /// exactly as the RAM-resident implementation it grew out of.
    bool enabled = true;
    int64_t resident_budget_bytes = std::numeric_limits<int64_t>::max();
    std::string spill_dir = "geotorch_spill";

    static Options FromEnv();
  };

  /// Process-wide store (leaked singleton: partitions alive at exit can
  /// still unregister safely). First call reads Options::FromEnv().
  static PartitionStore& Global();

  /// Replaces the configuration. Applies to partitions created after
  /// the call (an existing partition keeps the store decision made at
  /// its construction); the budget applies to everyone at the next
  /// admission. Intended for tests and bench harnesses.
  void Configure(const Options& options);
  Options options() const;

  /// Monotonic counters + live accounting, for tests and benches.
  struct Stats {
    int64_t resident_partitions = 0;
    int64_t spilled_partitions = 0;
    int64_t resident_bytes = 0;
    int64_t peak_resident_bytes = 0;
    int64_t spill_count = 0;   ///< evictions (incl. re-evictions)
    int64_t fault_count = 0;   ///< fault-ins
    int64_t spill_bytes = 0;   ///< GTDF bytes actually written
  };
  Stats GetStats() const;
  /// Resets peak_resident_bytes to the current resident_bytes (the
  /// monotonic counters are left alone). For bench capture windows.
  void ResetPeak();

 private:
  friend class Partition;

  PartitionStore() = default;

  // All hooks below are called by Partition. Lock order: a partition's
  // mu_ may be held while taking the store mutex, never the reverse —
  // EnforceBudget releases the store mutex before locking a victim.
  void Register(const Partition* p, int64_t bytes);
  void Unregister(const Partition* p);
  void OnFaultIn(const Partition* p, int64_t bytes);
  void Touch(const Partition* p);
  /// Spills coldest unpinned partitions until resident bytes fit the
  /// budget (or only pinned/excluded partitions remain). Must be
  /// called with no partition mutex held.
  void EnforceBudget(const Partition* exclude);
  std::string NextSpillPath();

  void TrySpill(const Partition* p);
  void TouchLocked(const Partition* p);
  void UpdateGaugeLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Options opts_ = Options::FromEnv();
  /// Resident partitions, hottest first.
  std::list<const Partition*> lru_;
  std::unordered_map<const Partition*, std::list<const Partition*>::iterator>
      resident_index_;
  std::unordered_set<const Partition*> spilled_;
  /// Victims between selection and spill completion; Unregister waits
  /// for membership to clear so an in-flight eviction never touches a
  /// destroyed partition.
  std::unordered_set<const Partition*> evicting_;
  int64_t resident_bytes_ = 0;
  int64_t peak_resident_bytes_ = 0;
  int64_t spill_count_ = 0;
  int64_t fault_count_ = 0;
  int64_t spill_bytes_ = 0;
  uint64_t next_file_id_ = 0;
  bool dir_ready_ = false;
};

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_PARTITION_STORE_H_
