#ifndef GEOTORCH_DF_COLUMN_H_
#define GEOTORCH_DF_COLUMN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "spatial/geometry.h"

namespace geotorch::df {

/// Column types supported by the engine. kGeometry stores points (the
/// geometry kind the preprocessing pipeline manipulates; Sedona's
/// richer geometry types are not needed by any paper experiment).
enum class DataType {
  kDouble,
  kInt64,
  kString,
  kGeometry,
};

const char* DataTypeToString(DataType type);

/// A single cell value (used at API boundaries; bulk access goes
/// through the typed spans).
using Value = std::variant<double, int64_t, std::string, spatial::Point>;

/// A typed, contiguous column of one partition.
///
/// Two backings share one read API: an *owned* column holds its values
/// in vectors (everything the engine builds), a *view* column borrows a
/// fixed-width payload from a memory-mapped GTDF partition file and
/// keeps the mapping alive through `keepalive`. Read accessors return
/// spans so callers never see the difference; mutable accessors are
/// only legal on owned columns (views are immutable by construction).
class Column {
 public:
  explicit Column(DataType type);

  static Column FromDoubles(std::vector<double> values);
  static Column FromInt64s(std::vector<int64_t> values);
  static Column FromStrings(std::vector<std::string> values);
  static Column FromPoints(std::vector<spatial::Point> values);

  /// Zero-copy views over `n` elements at `data` (8-byte aligned, e.g.
  /// inside an mmap'ed GTDF payload). `keepalive` pins the backing
  /// bytes — typically the file mapping — for the view's lifetime.
  /// Strings have no view form; a faulted-in string column is always
  /// materialized (owned).
  static Column ViewDoubles(const double* data, int64_t n,
                            std::shared_ptr<const void> keepalive);
  static Column ViewInt64s(const int64_t* data, int64_t n,
                           std::shared_ptr<const void> keepalive);
  static Column ViewPoints(const spatial::Point* data, int64_t n,
                           std::shared_ptr<const void> keepalive);

  DataType type() const { return type_; }
  bool is_view() const { return view_ != nullptr; }
  int64_t size() const;
  /// Approximate heap footprint in bytes (for memory accounting). A
  /// view column reports the bytes of mapped payload it exposes: those
  /// pages become resident once touched, so they count against the
  /// resident budget like owned bytes do.
  int64_t ByteSize() const;

  // Typed bulk accessors; abort on type mismatch.
  std::span<const double> doubles() const;
  std::span<const int64_t> int64s() const;
  std::span<const std::string> strings() const;
  std::span<const spatial::Point> points() const;
  // Builders; abort on type mismatch or when called on a view.
  std::vector<double>& mutable_doubles();
  std::vector<int64_t>& mutable_int64s();
  std::vector<std::string>& mutable_strings();
  std::vector<spatial::Point>& mutable_points();

  /// Generic single-cell access.
  Value Get(int64_t row) const;
  void Append(const Value& v);
  /// Appends row `row` of `other` (same type).
  void AppendFrom(const Column& other, int64_t row);

  /// Bulk row selection: a new (owned) column with rows[indices[i]]
  /// at i. The typed loop avoids per-cell dispatch on hot paths
  /// (Filter/Repartition/Join).
  Column Gather(const std::vector<int64_t>& indices) const;

 private:
  DataType type_;
  std::vector<double> doubles_;
  std::vector<int64_t> int64s_;
  std::vector<std::string> strings_;
  std::vector<spatial::Point> points_;
  // View backing (fixed-width types only).
  const void* view_ = nullptr;
  int64_t view_size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_COLUMN_H_
