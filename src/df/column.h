#ifndef GEOTORCH_DF_COLUMN_H_
#define GEOTORCH_DF_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "spatial/geometry.h"

namespace geotorch::df {

/// Column types supported by the engine. kGeometry stores points (the
/// geometry kind the preprocessing pipeline manipulates; Sedona's
/// richer geometry types are not needed by any paper experiment).
enum class DataType {
  kDouble,
  kInt64,
  kString,
  kGeometry,
};

const char* DataTypeToString(DataType type);

/// A single cell value (used at API boundaries; bulk access goes
/// through the typed vectors).
using Value = std::variant<double, int64_t, std::string, spatial::Point>;

/// A typed, contiguous column of one partition.
class Column {
 public:
  explicit Column(DataType type);

  static Column FromDoubles(std::vector<double> values);
  static Column FromInt64s(std::vector<int64_t> values);
  static Column FromStrings(std::vector<std::string> values);
  static Column FromPoints(std::vector<spatial::Point> values);

  DataType type() const { return type_; }
  int64_t size() const;
  /// Approximate heap footprint in bytes (for memory accounting).
  int64_t ByteSize() const;

  // Typed bulk accessors; abort on type mismatch.
  const std::vector<double>& doubles() const;
  const std::vector<int64_t>& int64s() const;
  const std::vector<std::string>& strings() const;
  const std::vector<spatial::Point>& points() const;
  std::vector<double>& mutable_doubles();
  std::vector<int64_t>& mutable_int64s();
  std::vector<std::string>& mutable_strings();
  std::vector<spatial::Point>& mutable_points();

  /// Generic single-cell access.
  Value Get(int64_t row) const;
  void Append(const Value& v);
  /// Appends row `row` of `other` (same type).
  void AppendFrom(const Column& other, int64_t row);

  /// Bulk row selection: a new column with rows[indices[i]] at i.
  /// The typed loop avoids per-cell dispatch on hot paths
  /// (Filter/Repartition/Join).
  Column Gather(const std::vector<int64_t>& indices) const;

 private:
  DataType type_;
  std::vector<double> doubles_;
  std::vector<int64_t> int64s_;
  std::vector<std::string> strings_;
  std::vector<spatial::Point> points_;
};

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_COLUMN_H_
