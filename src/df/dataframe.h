#ifndef GEOTORCH_DF_DATAFRAME_H_
#define GEOTORCH_DF_DATAFRAME_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/memory.h"
#include "core/status.h"
#include "df/column.h"

namespace geotorch::df {

/// Ordered (name, type) field list of a DataFrame.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::pair<std::string, DataType>> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const std::string& name(int i) const { return fields_[i].first; }
  DataType type(int i) const { return fields_[i].second; }

  /// Index of `name`; aborts when absent (schema errors are bugs).
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const;

  const std::vector<std::pair<std::string, DataType>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, DataType>> fields_;
};

/// A reference-counted immutable column whose heap footprint is
/// registered with the global MemoryTracker for exactly as long as the
/// storage lives. Transformations that keep a column (Select,
/// WithColumn, Drop) share the pointer instead of copying the data —
/// the structural sharing a columnar engine relies on.
using SharedColumn = std::shared_ptr<const Column>;

/// Wraps a freshly built column, accounting its bytes until the last
/// reference drops.
SharedColumn TrackColumn(Column column);

class PartitionStore;

/// One horizontal slice of a DataFrame — the unit of parallel work, the
/// analogue of a Spark partition living on one executor. Columns are
/// immutable and may be shared with other partitions/frames.
///
/// A partition is *spillable*: when the process-wide PartitionStore has
/// a resident budget, cold partitions are written to a GTDF file and
/// their columns dropped; the first access afterwards faults the
/// columns back in (fixed-width columns as zero-copy spans over the
/// mmap'ed file). `column()` fault-in is transparent, but a reference
/// it returns is only guaranteed to stay valid against a *concurrent*
/// eviction while a Pin is held — every multi-partition DataFrame op
/// and ForEachPartition pins for you; only code that hands bare
/// `Partition&`s to its own threads needs to Pin explicitly.
class Partition {
 public:
  /// Wraps freshly built columns (registers their bytes).
  explicit Partition(std::vector<Column> columns);
  /// Shares already-tracked columns (no new accounting).
  explicit Partition(std::vector<SharedColumn> columns);
  ~Partition();
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(types_.size()); }
  DataType column_type(int i) const { return types_[i]; }
  /// Faults the partition in if spilled.
  const Column& column(int i) const;
  /// Faults in if spilled; the returned shared column stays valid even
  /// if this partition is evicted afterwards.
  SharedColumn column_ptr(int i) const;
  /// Resident bytes of this partition's columns (shared columns count
  /// in every partition that references them); 0 while spilled.
  int64_t ByteSize() const;
  bool resident() const {
    return resident_.load(std::memory_order_acquire);
  }

  /// RAII residency pin: faults the partition in and blocks eviction
  /// until destroyed. Cheap (one mutex round-trip) and reentrant.
  class Pin {
   public:
    explicit Pin(const Partition& p);
    ~Pin();
    Pin(Pin&& other) noexcept : p_(other.p_) { other.p_ = nullptr; }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    Pin& operator=(Pin&&) = delete;

   private:
    const Partition* p_;
  };

 private:
  friend class PartitionStore;
  void Init();
  /// Requires mu_; loads columns from spill_path_ and re-admits.
  void FaultInLocked() const;
  /// Requires mu_, resident, unpinned. Writes the GTDF file on first
  /// eviction (columns are immutable, so a re-eviction reuses it) and
  /// drops the column references. Returns false if the write failed
  /// (the partition then simply stays resident); *file_bytes gets the
  /// bytes newly written to disk.
  bool SpillLocked(int64_t* file_bytes) const;

  std::vector<DataType> types_;
  int64_t num_rows_ = 0;
  PartitionStore* store_ = nullptr;

  mutable std::mutex mu_;
  mutable std::vector<SharedColumn> columns_;  // empty while spilled
  mutable std::atomic<bool> resident_{true};
  mutable int pin_count_ = 0;          // guarded by mu_
  mutable int64_t resident_bytes_ = 0;  // guarded by mu_
  mutable std::string spill_path_;      // set on first spill
};

/// Read-only view of one row of a partition.
class RowView {
 public:
  RowView(const Partition* partition, const Schema* schema, int64_t row)
      : partition_(partition), schema_(schema), row_(row) {}

  double GetDouble(int col) const {
    return partition_->column(col).doubles()[row_];
  }
  int64_t GetInt64(int col) const {
    return partition_->column(col).int64s()[row_];
  }
  const std::string& GetString(int col) const {
    return partition_->column(col).strings()[row_];
  }
  const spatial::Point& GetPoint(int col) const {
    return partition_->column(col).points()[row_];
  }
  Value Get(int col) const { return partition_->column(col).Get(row_); }
  int ColumnIndex(const std::string& name) const {
    return schema_->FieldIndex(name);
  }
  int64_t row() const { return row_; }

 private:
  const Partition* partition_;
  const Schema* schema_;
  int64_t row_;
};

/// Aggregations supported by GroupByAgg.
enum class AggKind { kCount, kSum, kMin, kMax, kMean, kVariance, kStdDev };

struct AggSpec {
  AggKind kind;
  /// Source column (ignored for kCount; pass ""). Must be numeric.
  std::string column;
  /// Output column name.
  std::string alias;
};

/// An immutable, partitioned, columnar DataFrame executed on the
/// process thread pool — the engine under the preprocessing module,
/// standing in for Sedona/Spark (DESIGN.md §1). Transformations return
/// new DataFrames; per-partition work runs in parallel; group-by uses
/// local partial aggregation plus a hash shuffle, so no operation
/// funnels all rows through a single "master" buffer.
class DataFrame {
 public:
  DataFrame() = default;

  /// Builds a single-partition frame from columns, then optionally
  /// Repartition() for parallelism.
  static DataFrame FromColumns(
      std::vector<std::pair<std::string, Column>> columns);

  /// Builds a frame that is already split into `partitions` (all must
  /// match `schema`).
  static DataFrame FromPartitions(
      std::shared_ptr<const Schema> schema,
      std::vector<std::shared_ptr<const Partition>> partitions);

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  const Partition& partition(int i) const { return *partitions_[i]; }
  std::shared_ptr<const Partition> partition_ptr(int i) const {
    return partitions_[i];
  }
  int64_t NumRows() const;
  /// Total tracked bytes across partitions.
  int64_t ByteSize() const;

  // --- Transformations (lazy-free: each executes eagerly in parallel) ---

  /// Redistributes rows round-robin into `n` partitions.
  DataFrame Repartition(int n) const;

  /// Keeps the named columns, in the given order.
  DataFrame Select(const std::vector<std::string>& names) const;

  /// Keeps rows where `pred` returns true.
  DataFrame Filter(const std::function<bool(const RowView&)>& pred) const;

  /// Appends a computed column.
  DataFrame WithColumn(
      const std::string& name, DataType type,
      const std::function<Value(const RowView&)>& fn) const;

  /// Drops a column.
  DataFrame Drop(const std::string& name) const;

  /// Groups by int64 key columns and computes aggregates. Two-phase:
  /// per-partition partial aggregation, then a parallel hash-sharded
  /// merge (one output partition per shard).
  DataFrame GroupByAgg(const std::vector<std::string>& keys,
                       const std::vector<AggSpec>& aggs,
                       int num_shards = 0) const;

  /// Inner hash join on one int64 key column each side. The right side
  /// is built into a hash table (broadcast); the left side probes in
  /// parallel.
  DataFrame JoinInner(const DataFrame& right, const std::string& left_key,
                      const std::string& right_key) const;

  /// Sorts all rows by an int64 column (ascending), producing a single
  /// partition. Used only for small result sets (e.g. before export).
  DataFrame SortByInt64(const std::string& name) const;

  /// Concatenates the rows of two frames with identical schemas (the
  /// partitions of `other` are appended; no data is copied).
  DataFrame Union(const DataFrame& other) const;

  /// Unique combinations of the given int64 key columns.
  DataFrame Distinct(const std::vector<std::string>& keys) const;

  /// Runs `fn` over every partition in parallel (read-only access).
  void ForEachPartition(
      const std::function<void(const Partition&, int)>& fn) const;

  /// All values of an int64/double column, concatenated across
  /// partitions (ordering follows partition order).
  std::vector<int64_t> CollectInt64(const std::string& name) const;
  std::vector<double> CollectDouble(const std::string& name) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::shared_ptr<const Partition>> partitions_;
};

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_DATAFRAME_H_
