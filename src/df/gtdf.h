#ifndef GEOTORCH_DF_GTDF_H_
#define GEOTORCH_DF_GTDF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "df/column.h"

namespace geotorch::df {

/// GTDF — the on-disk form of one DataFrame partition (DESIGN.md §12).
/// A single versioned binary blob, little-endian, with the same
/// corruption-safety discipline as the GTCP checkpoint format: every
/// structural field is bounds-checked before any payload is touched,
/// and a CRC-32 trailer covers every preceding byte, so truncation and
/// bit flips surface as Status errors, never crashes.
///
///   "GTDF" magic | u32 version | u32 num_columns | i64 num_rows
///   directory, one entry per column:
///     u8 type | u64 payload_offset | u64 payload_size
///   payloads (each offset 8-byte aligned, zero-padded between):
///     double:   num_rows x f64
///     int64:    num_rows x i64
///     geometry: num_rows x {f64 x, f64 y}
///     string:   u64 byte_offsets[num_rows + 1] | utf-8 blob
///   u32 CRC-32 trailer over every preceding byte
///
/// Fixed-width payloads are 8-byte aligned precisely so a reader can
/// serve them as typed spans straight out of an mmap'ed file image.
inline constexpr uint32_t kGtdfVersion = 1;

/// Writes the columns of one partition to `path`, streaming column by
/// column with an incrementally chained CRC (the file image is never
/// buffered whole — spilling a partition must not momentarily double
/// its footprint). All columns must have `num_rows` entries.
Status WriteGtdf(const std::string& path,
                 const std::vector<std::shared_ptr<const Column>>& columns,
                 int64_t num_rows);

/// A partition faulted back in from a GTDF file. Fixed-width columns
/// are zero-copy views over the (mmap'ed) file image — `keepalive`
/// holds the mapping through the columns themselves; string columns
/// are materialized. `via_mmap` is false when the platform map failed
/// and the image was read with plain positioned reads instead.
struct GtdfPartition {
  std::vector<Column> columns;
  int64_t num_rows = 0;
  bool via_mmap = false;
};

/// Parses a GTDF file written by WriteGtdf. Any structural problem —
/// wrong magic, unsupported (newer) version, truncation, CRC mismatch,
/// out-of-bounds or misaligned directory entry, non-monotonic string
/// offsets — returns an error Status.
Result<GtdfPartition> ReadGtdf(const std::string& path);

}  // namespace geotorch::df

#endif  // GEOTORCH_DF_GTDF_H_
