#include "df/dataframe.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <queue>
#include <span>
#include <unordered_map>

#include "core/check.h"
#include "core/thread_pool.h"
#include "df/partition_store.h"
#include "obs/obs.h"

namespace geotorch::df {
namespace {

// Publishes the engine's logical-memory accounting alongside the
// metrics, so a trace dump shows operator timings and the bytes the
// operators left live (Fig. 8's measurement, now exported).
void PublishMemoryGauges() {
  if (!GEO_OBS_ON()) return;
  obs::SetGauge("df.tracked_bytes", MemoryTracker::Global().current_bytes());
  obs::SetGauge("df.tracked_peak_bytes", MemoryTracker::Global().peak_bytes());
}

// Numeric read of a column cell as double (int64 widens).
double NumericAt(const Column& col, int64_t row) {
  if (col.type() == DataType::kDouble) return col.doubles()[row];
  GEO_CHECK(col.type() == DataType::kInt64)
      << "aggregation column must be numeric";
  return static_cast<double>(col.int64s()[row]);
}

uint64_t HashKey(const std::vector<int64_t>& key) {
  uint64_t h = 1469598103934665603ull;
  for (int64_t k : key) {
    h ^= static_cast<uint64_t>(k);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

struct VectorKeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    return static_cast<size_t>(HashKey(key));
  }
};

// Partial state of one group for all requested aggregations. Inline
// storage: group counts routinely reach the row count (every
// (cell, timestep) pair distinct), so per-group heap allocations would
// dominate the aggregation.
constexpr size_t kMaxAggs = 8;

struct AggState {
  int64_t count = 0;
  double sum[kMaxAggs];
  double sumsq[kMaxAggs];
  double min[kMaxAggs];
  double max[kMaxAggs];
};

void InitState(AggState& state, size_t num_aggs) {
  if (state.count == 0) {
    for (size_t a = 0; a < num_aggs; ++a) {
      state.sum[a] = 0.0;
      state.sumsq[a] = 0.0;
      state.min[a] = std::numeric_limits<double>::infinity();
      state.max[a] = -std::numeric_limits<double>::infinity();
    }
  }
}

void MergeState(AggState& dst, const AggState& src, size_t num_aggs) {
  if (dst.count == 0) {
    dst = src;
    return;
  }
  dst.count += src.count;
  for (size_t a = 0; a < num_aggs; ++a) {
    dst.sum[a] += src.sum[a];
    dst.sumsq[a] += src.sumsq[a];
    dst.min[a] = std::min(dst.min[a], src.min[a]);
    dst.max[a] = std::max(dst.max[a], src.max[a]);
  }
}

void EmitAggValue(const AggSpec& spec, const AggState& state, size_t a,
                  Column& col) {
  switch (spec.kind) {
    case AggKind::kCount:
      col.mutable_int64s().push_back(state.count);
      break;
    case AggKind::kSum:
      col.mutable_doubles().push_back(state.sum[a]);
      break;
    case AggKind::kMin:
      col.mutable_doubles().push_back(state.min[a]);
      break;
    case AggKind::kMax:
      col.mutable_doubles().push_back(state.max[a]);
      break;
    case AggKind::kMean:
      col.mutable_doubles().push_back(
          state.sum[a] / static_cast<double>(state.count));
      break;
    case AggKind::kVariance:
    case AggKind::kStdDev: {
      const double n = static_cast<double>(state.count);
      const double mean = state.sum[a] / n;
      const double var = std::max(0.0, state.sumsq[a] / n - mean * mean);
      col.mutable_doubles().push_back(
          spec.kind == AggKind::kVariance ? var : std::sqrt(var));
      break;
    }
  }
}

}  // namespace

// --- Schema ------------------------------------------------------------

Schema::Schema(std::vector<std::pair<std::string, DataType>> fields)
    : fields_(std::move(fields)) {}

int Schema::FieldIndex(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[i].first == name) return i;
  }
  GEO_CHECK(false) << "no column named '" << name << "'";
  return -1;
}

bool Schema::HasField(const std::string& name) const {
  for (const auto& [n, t] : fields_) {
    if (n == name) return true;
  }
  return false;
}

// --- Partition ----------------------------------------------------------

SharedColumn TrackColumn(Column column) {
  const int64_t bytes = column.ByteSize();
  MemoryTracker::Global().Allocate(bytes);
  return SharedColumn(new Column(std::move(column)),
                      [bytes](const Column* c) {
                        MemoryTracker::Global().Release(bytes);
                        delete c;
                      });
}

Partition::Partition(std::vector<Column> columns) {
  columns_.reserve(columns.size());
  for (auto& c : columns) columns_.push_back(TrackColumn(std::move(c)));
  Init();
}

Partition::Partition(std::vector<SharedColumn> columns)
    : columns_(std::move(columns)) {
  Init();
}

void Partition::Init() {
  if (!columns_.empty()) {
    num_rows_ = columns_[0]->size();
    for (const auto& c : columns_) {
      GEO_CHECK_EQ(c->size(), num_rows_) << "ragged partition";
    }
  }
  types_.reserve(columns_.size());
  int64_t bytes = 0;
  for (const auto& c : columns_) {
    types_.push_back(c->type());
    bytes += c->ByteSize();
  }
  resident_bytes_ = bytes;
  // The store decision is made once, here: a partition created while
  // spilling is disabled stays unmanaged for its whole life even if the
  // store is reconfigured later.
  PartitionStore& store = PartitionStore::Global();
  if (store.options().enabled) {
    store_ = &store;
    store_->Register(this, bytes);
    store_->EnforceBudget(this);
  }
}

Partition::~Partition() {
  if (store_ != nullptr) {
    store_->Unregister(this);
    if (!spill_path_.empty()) std::remove(spill_path_.c_str());
  }
}

// --- DataFrame ------------------------------------------------------------

DataFrame DataFrame::FromColumns(
    std::vector<std::pair<std::string, Column>> columns) {
  GEO_CHECK(!columns.empty());
  std::vector<std::pair<std::string, DataType>> fields;
  std::vector<Column> cols;
  for (auto& [name, col] : columns) {
    fields.emplace_back(name, col.type());
    cols.push_back(std::move(col));
  }
  DataFrame out;
  out.schema_ = std::make_shared<Schema>(std::move(fields));
  out.partitions_.push_back(std::make_shared<Partition>(std::move(cols)));
  return out;
}

DataFrame DataFrame::FromPartitions(
    std::shared_ptr<const Schema> schema,
    std::vector<std::shared_ptr<const Partition>> partitions) {
  DataFrame out;
  out.schema_ = std::move(schema);
  out.partitions_ = std::move(partitions);
  GEO_CHECK(out.schema_ != nullptr);
  return out;
}

int64_t DataFrame::NumRows() const {
  int64_t n = 0;
  for (const auto& p : partitions_) n += p->num_rows();
  return n;
}

int64_t DataFrame::ByteSize() const {
  int64_t n = 0;
  for (const auto& p : partitions_) n += p->ByteSize();
  return n;
}

void DataFrame::ForEachPartition(
    const std::function<void(const Partition&, int)>& fn) const {
  ThreadPool::Global().ParallelFor(
      static_cast<int64_t>(partitions_.size()), [&](int64_t i) {
        const int64_t t0 = GEO_OBS_ON() ? obs::NowNs() : 0;
        Partition::Pin pin(*partitions_[i]);
        fn(*partitions_[i], static_cast<int>(i));
        if (t0 != 0) {
          GEO_OBS_HIST("df.partition_us", (obs::NowNs() - t0) / 1000);
        }
      });
}

DataFrame DataFrame::Repartition(int n) const {
  GEO_CHECK_GE(n, 1);
  GEO_OBS_SPAN(op_span, "df.repartition");
  // Round-robin split by global row id; each output partition gathers
  // its rows from every input partition.
  std::vector<int64_t> part_offsets = {0};
  for (const auto& p : partitions_) {
    part_offsets.push_back(part_offsets.back() + p->num_rows());
  }
  std::vector<std::shared_ptr<const Partition>> out_parts(n);
  ThreadPool::Global().ParallelFor(n, [&](int64_t target) {
    std::vector<SharedColumn> cols(schema_->num_fields());
    std::vector<Column> built;
    built.reserve(schema_->num_fields());
    // Per input partition, the local indices this target takes.
    std::vector<std::vector<int64_t>> take(partitions_.size());
    for (size_t pi = 0; pi < partitions_.size(); ++pi) {
      const int64_t begin = part_offsets[pi];
      const int64_t rows = partitions_[pi]->num_rows();
      // Global ids congruent to target (mod n) within [begin, begin+rows).
      int64_t first = begin % n <= target
                          ? begin + (target - begin % n)
                          : begin + (n - begin % n + target);
      for (int64_t g = first; g < begin + rows; g += n) {
        take[pi].push_back(g - begin);
      }
    }
    for (int c = 0; c < schema_->num_fields(); ++c) {
      Column merged(schema_->type(c));
      for (size_t pi = 0; pi < partitions_.size(); ++pi) {
        if (take[pi].empty()) continue;
        Partition::Pin pin(*partitions_[pi]);
        Column piece = partitions_[pi]->column(c).Gather(take[pi]);
        if (merged.size() == 0) {
          merged = std::move(piece);
        } else {
          for (int64_t r = 0; r < piece.size(); ++r) {
            merged.AppendFrom(piece, r);
          }
        }
      }
      cols[c] = TrackColumn(std::move(merged));
    }
    out_parts[target] = std::make_shared<Partition>(std::move(cols));
  });
  return FromPartitions(schema_, std::move(out_parts));
}

DataFrame DataFrame::Select(const std::vector<std::string>& names) const {
  std::vector<int> indices;
  std::vector<std::pair<std::string, DataType>> fields;
  for (const auto& name : names) {
    const int i = schema_->FieldIndex(name);
    indices.push_back(i);
    fields.emplace_back(name, schema_->type(i));
  }
  auto out_schema = std::make_shared<Schema>(std::move(fields));
  std::vector<std::shared_ptr<const Partition>> out_parts(num_partitions());
  for (int pi = 0; pi < num_partitions(); ++pi) {
    std::vector<SharedColumn> cols;
    cols.reserve(indices.size());
    for (int idx : indices) cols.push_back(partitions_[pi]->column_ptr(idx));
    out_parts[pi] = std::make_shared<Partition>(std::move(cols));
  }
  return FromPartitions(out_schema, std::move(out_parts));
}

DataFrame DataFrame::Filter(
    const std::function<bool(const RowView&)>& pred) const {
  GEO_OBS_SPAN(op_span, "df.filter");
  std::vector<std::shared_ptr<const Partition>> out_parts(num_partitions());
  ForEachPartition([&](const Partition& part, int pi) {
    std::vector<int64_t> keep;
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      RowView row(&part, schema_.get(), r);
      if (pred(row)) keep.push_back(r);
    }
    std::vector<SharedColumn> cols;
    cols.reserve(schema_->num_fields());
    for (int c = 0; c < schema_->num_fields(); ++c) {
      cols.push_back(TrackColumn(part.column(c).Gather(keep)));
    }
    out_parts[pi] = std::make_shared<Partition>(std::move(cols));
  });
  return FromPartitions(schema_, std::move(out_parts));
}

DataFrame DataFrame::WithColumn(
    const std::string& name, DataType type,
    const std::function<Value(const RowView&)>& fn) const {
  GEO_CHECK(!schema_->HasField(name))
      << "column '" << name << "' already exists";
  GEO_OBS_SPAN(op_span, "df.with_column");
  auto fields = schema_->fields();
  fields.emplace_back(name, type);
  auto out_schema = std::make_shared<Schema>(std::move(fields));
  std::vector<std::shared_ptr<const Partition>> out_parts(num_partitions());
  ForEachPartition([&](const Partition& part, int pi) {
    std::vector<SharedColumn> cols;
    cols.reserve(schema_->num_fields() + 1);
    for (int c = 0; c < schema_->num_fields(); ++c) {
      cols.push_back(part.column_ptr(c));  // structural sharing
    }
    Column extra(type);
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      RowView row(&part, schema_.get(), r);
      extra.Append(fn(row));
    }
    cols.push_back(TrackColumn(std::move(extra)));
    out_parts[pi] = std::make_shared<Partition>(std::move(cols));
  });
  return FromPartitions(out_schema, std::move(out_parts));
}

DataFrame DataFrame::Drop(const std::string& name) const {
  std::vector<std::string> keep;
  for (const auto& [n, t] : schema_->fields()) {
    if (n != name) keep.push_back(n);
  }
  GEO_CHECK_LT(static_cast<int>(keep.size()), schema_->num_fields())
      << "Drop: no column named '" << name << "'";
  return Select(keep);
}

DataFrame DataFrame::GroupByAgg(const std::vector<std::string>& keys,
                                const std::vector<AggSpec>& aggs,
                                int num_shards) const {
  GEO_CHECK(!keys.empty());
  if (num_shards <= 0) {
    num_shards = std::max(1, ThreadPool::Global().num_threads());
  }
  std::vector<int> key_idx;
  for (const auto& k : keys) {
    const int i = schema_->FieldIndex(k);
    GEO_CHECK(schema_->type(i) == DataType::kInt64)
        << "group-by keys must be int64 (got " << k << ")";
    key_idx.push_back(i);
  }
  std::vector<int> agg_idx;
  for (const auto& a : aggs) {
    agg_idx.push_back(a.kind == AggKind::kCount
                          ? -1
                          : schema_->FieldIndex(a.column));
  }
  const size_t num_aggs = aggs.size();
  GEO_CHECK_LE(num_aggs, kMaxAggs) << "too many aggregations";

  GEO_OBS_SPAN(op_span, "df.groupby");

  // Fast path: one or two non-negative 31-bit keys pack into a single
  // uint64, avoiding a heap-allocated vector per hash probe.
  bool packable = key_idx.size() <= 2;
  if (packable) {
    for (int pi = 0; pi < num_partitions() && packable; ++pi) {
      Partition::Pin pin(*partitions_[pi]);
      for (int k : key_idx) {
        const auto vals = partitions_[pi]->column(k).int64s();
        for (int64_t v : vals) {
          if (v < 0 || v >= (int64_t{1} << 31)) {
            packable = false;
            break;
          }
        }
        if (!packable) break;
      }
    }
  }

  using PackedMap = std::unordered_map<uint64_t, AggState>;
  using VectorMap =
      std::unordered_map<std::vector<int64_t>, AggState, VectorKeyHash>;

  // Phase 1: per-partition partial aggregation, sharded by key hash so
  // the merge phase needs no locking.
  std::vector<std::vector<PackedMap>> packed_partials(partitions_.size());
  std::vector<std::vector<VectorMap>> vector_partials(partitions_.size());
  {
    GEO_OBS_SPAN(partial_span, "df.groupby.partial");
    ForEachPartition([&](const Partition& part, int pi) {
      const int64_t rows = part.num_rows();
      std::vector<std::span<const int64_t>> key_cols;
      for (int k : key_idx) key_cols.push_back(part.column(k).int64s());
      if (packable) {
        std::vector<PackedMap> shards(num_shards);
        for (auto& m : shards) m.reserve(rows / num_shards + 16);
        for (int64_t r = 0; r < rows; ++r) {
          uint64_t packed = static_cast<uint64_t>(key_cols[0][r]);
          if (key_cols.size() == 2) {
            packed = (packed << 31) | static_cast<uint64_t>(key_cols[1][r]);
          }
          const int shard = static_cast<int>(MixHash(packed) % num_shards);
          AggState& state = shards[shard][packed];
          InitState(state, num_aggs);
          ++state.count;
          for (size_t a = 0; a < num_aggs; ++a) {
            if (agg_idx[a] < 0) continue;
            const double v = NumericAt(part.column(agg_idx[a]), r);
            state.sum[a] += v;
            state.sumsq[a] += v * v;
            state.min[a] = std::min(state.min[a], v);
            state.max[a] = std::max(state.max[a], v);
          }
        }
        packed_partials[pi] = std::move(shards);
      } else {
        std::vector<VectorMap> shards(num_shards);
        for (auto& m : shards) m.reserve(rows / num_shards + 16);
        std::vector<int64_t> key(key_idx.size());
        for (int64_t r = 0; r < rows; ++r) {
          for (size_t k = 0; k < key_cols.size(); ++k) {
            key[k] = key_cols[k][r];
          }
          const int shard = static_cast<int>(HashKey(key) % num_shards);
          AggState& state = shards[shard][key];
          InitState(state, num_aggs);
          ++state.count;
          for (size_t a = 0; a < num_aggs; ++a) {
            if (agg_idx[a] < 0) continue;
            const double v = NumericAt(part.column(agg_idx[a]), r);
            state.sum[a] += v;
            state.sumsq[a] += v * v;
            state.min[a] = std::min(state.min[a], v);
            state.max[a] = std::max(state.max[a], v);
          }
        }
        vector_partials[pi] = std::move(shards);
      }
    });
  }

  // Output schema: keys then agg aliases.
  std::vector<std::pair<std::string, DataType>> fields;
  for (const auto& k : keys) fields.emplace_back(k, DataType::kInt64);
  for (const auto& a : aggs) {
    fields.emplace_back(a.alias, a.kind == AggKind::kCount
                                     ? DataType::kInt64
                                     : DataType::kDouble);
  }
  auto out_schema = std::make_shared<Schema>(std::move(fields));

  // Phase 2: shard-parallel merge; one output partition per shard.
  GEO_OBS_SPAN(merge_span, "df.groupby.merge");
  const size_t num_keys = key_idx.size();
  std::vector<std::shared_ptr<const Partition>> out_parts(num_shards);
  ThreadPool::Global().ParallelFor(num_shards, [&](int64_t shard) {
    std::vector<Column> cols;
    for (size_t k = 0; k < num_keys; ++k) {
      cols.emplace_back(DataType::kInt64);
    }
    for (const auto& a : aggs) {
      cols.emplace_back(a.kind == AggKind::kCount ? DataType::kInt64
                                                  : DataType::kDouble);
    }
    if (packable) {
      PackedMap merged;
      size_t total = 0;
      for (auto& parts : packed_partials) total += parts[shard].size();
      merged.reserve(total);
      for (auto& parts : packed_partials) {
        for (auto& [key, state] : parts[shard]) {
          MergeState(merged[key], state, num_aggs);
        }
      }
      for (auto& [packed, state] : merged) {
        if (num_keys == 2) {
          cols[0].mutable_int64s().push_back(
              static_cast<int64_t>(packed >> 31));
          cols[1].mutable_int64s().push_back(
              static_cast<int64_t>(packed & ((uint64_t{1} << 31) - 1)));
        } else {
          cols[0].mutable_int64s().push_back(static_cast<int64_t>(packed));
        }
        for (size_t a = 0; a < num_aggs; ++a) {
          EmitAggValue(aggs[a], state, a, cols[num_keys + a]);
        }
      }
    } else {
      VectorMap merged;
      for (auto& parts : vector_partials) {
        for (auto& [key, state] : parts[shard]) {
          MergeState(merged[key], state, num_aggs);
        }
      }
      for (auto& [key, state] : merged) {
        for (size_t k = 0; k < num_keys; ++k) {
          cols[k].mutable_int64s().push_back(key[k]);
        }
        for (size_t a = 0; a < num_aggs; ++a) {
          EmitAggValue(aggs[a], state, a, cols[num_keys + a]);
        }
      }
    }
    out_parts[shard] = std::make_shared<Partition>(std::move(cols));
  });
  DataFrame out = FromPartitions(out_schema, std::move(out_parts));
  PublishMemoryGauges();
  return out;
}

DataFrame DataFrame::JoinInner(const DataFrame& right,
                               const std::string& left_key,
                               const std::string& right_key) const {
  const int lk = schema_->FieldIndex(left_key);
  const int rk = right.schema().FieldIndex(right_key);
  GEO_CHECK(schema_->type(lk) == DataType::kInt64 &&
            right.schema().type(rk) == DataType::kInt64)
      << "join keys must be int64";

  GEO_OBS_SPAN(op_span, "df.join");

  // The broadcast side must stay resident from the hash build through
  // the last probe-side gather (the build table stores row positions,
  // not values).
  std::vector<Partition::Pin> right_pins;
  right_pins.reserve(right.num_partitions());
  for (int pi = 0; pi < right.num_partitions(); ++pi) {
    right_pins.emplace_back(right.partition(pi));
  }

  // Build side: key -> (partition, row) list.
  std::unordered_multimap<int64_t, std::pair<int, int64_t>> build;
  for (int pi = 0; pi < right.num_partitions(); ++pi) {
    const Partition& part = right.partition(pi);
    const auto keys = part.column(rk).int64s();
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      build.emplace(keys[r], std::make_pair(pi, r));
    }
  }

  // Output schema: all left fields + right fields (right key dropped;
  // name-collisions get a "right_" prefix).
  std::vector<std::pair<std::string, DataType>> fields = schema_->fields();
  std::vector<int> right_cols;
  for (int c = 0; c < right.schema().num_fields(); ++c) {
    if (c == rk) continue;
    right_cols.push_back(c);
    std::string name = right.schema().name(c);
    if (schema_->HasField(name)) name = "right_" + name;
    fields.emplace_back(name, right.schema().type(c));
  }
  auto out_schema = std::make_shared<Schema>(std::move(fields));

  std::vector<std::shared_ptr<const Partition>> out_parts(num_partitions());
  ForEachPartition([&](const Partition& part, int pi) {
    // Matched (left row, right partition, right row) triples.
    std::vector<int64_t> left_rows;
    std::vector<std::pair<int, int64_t>> right_rows;
    const auto keys = part.column(lk).int64s();
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      auto [begin, end] = build.equal_range(keys[r]);
      for (auto it = begin; it != end; ++it) {
        left_rows.push_back(r);
        right_rows.push_back(it->second);
      }
    }
    std::vector<SharedColumn> cols;
    cols.reserve(out_schema->num_fields());
    for (int c = 0; c < schema_->num_fields(); ++c) {
      cols.push_back(TrackColumn(part.column(c).Gather(left_rows)));
    }
    for (int rc : right_cols) {
      Column gathered(right.schema().type(rc));
      for (const auto& [rpi, rr] : right_rows) {
        gathered.AppendFrom(right.partition(rpi).column(rc), rr);
      }
      cols.push_back(TrackColumn(std::move(gathered)));
    }
    out_parts[pi] = std::make_shared<Partition>(std::move(cols));
  });
  DataFrame out = FromPartitions(out_schema, std::move(out_parts));
  PublishMemoryGauges();
  return out;
}

DataFrame DataFrame::SortByInt64(const std::string& name) const {
  const int idx = schema_->FieldIndex(name);
  GEO_CHECK(schema_->type(idx) == DataType::kInt64);
  GEO_OBS_SPAN(op_span, "df.sort");
  // Per-partition stable sort of (key, row) runs in parallel, then a
  // k-way merge with ties broken on partition index. A run preserves
  // its partition's row order for equal keys and the merge takes equal
  // keys from the lowest partition first, so the merged order equals a
  // global stable sort over the concatenated partitions — the serial
  // implementation this replaced.
  struct Loc {
    int64_t key;
    int64_t row;
  };
  const int np = num_partitions();
  std::vector<std::vector<Loc>> runs(np);
  ForEachPartition([&](const Partition& part, int pi) {
    const auto keys = part.column(idx).int64s();
    std::vector<Loc>& run = runs[pi];
    run.reserve(part.num_rows());
    for (int64_t r = 0; r < part.num_rows(); ++r) {
      run.push_back({keys[r], r});
    }
    std::stable_sort(run.begin(), run.end(),
                     [](const Loc& a, const Loc& b) { return a.key < b.key; });
  });

  struct Head {
    int64_t key;
    int part;
  };
  const auto head_after = [](const Head& a, const Head& b) {
    return a.key > b.key || (a.key == b.key && a.part > b.part);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(head_after)> heads(
      head_after);
  std::vector<int64_t> cursor(np, 0);
  for (int pi = 0; pi < np; ++pi) {
    if (!runs[pi].empty()) heads.push({runs[pi][0].key, pi});
  }
  struct OutLoc {
    int part;
    int64_t row;
  };
  std::vector<OutLoc> merged;
  merged.reserve(NumRows());
  while (!heads.empty()) {
    const Head head = heads.top();
    heads.pop();
    merged.push_back({head.part, runs[head.part][cursor[head.part]].row});
    const int64_t next = ++cursor[head.part];
    if (next < static_cast<int64_t>(runs[head.part].size())) {
      heads.push({runs[head.part][next].key, head.part});
    }
  }

  // Materialize output columns independently across the pool. Every
  // column task reads from every input partition, so all inputs stay
  // pinned for the gather (sort output is a small single partition).
  std::vector<Partition::Pin> pins;
  pins.reserve(partitions_.size());
  for (const auto& p : partitions_) pins.emplace_back(*p);
  std::vector<Column> cols;
  for (int c = 0; c < schema_->num_fields(); ++c) {
    cols.emplace_back(schema_->type(c));
  }
  ThreadPool::Global().ParallelFor(schema_->num_fields(), [&](int64_t c) {
    for (const OutLoc& loc : merged) {
      cols[c].AppendFrom(partitions_[loc.part]->column(c), loc.row);
    }
  });
  std::vector<std::shared_ptr<const Partition>> parts;
  parts.push_back(std::make_shared<Partition>(std::move(cols)));
  return FromPartitions(schema_, std::move(parts));
}

DataFrame DataFrame::Union(const DataFrame& other) const {
  GEO_CHECK_EQ(schema_->num_fields(), other.schema().num_fields());
  for (int c = 0; c < schema_->num_fields(); ++c) {
    GEO_CHECK(schema_->name(c) == other.schema().name(c) &&
              schema_->type(c) == other.schema().type(c))
        << "Union: schema mismatch at column " << c;
  }
  std::vector<std::shared_ptr<const Partition>> parts = partitions_;
  for (int pi = 0; pi < other.num_partitions(); ++pi) {
    parts.push_back(other.partition_ptr(pi));
  }
  return FromPartitions(schema_, std::move(parts));
}

DataFrame DataFrame::Distinct(const std::vector<std::string>& keys) const {
  return GroupByAgg(keys, {{AggKind::kCount, "", "_n"}}).Drop("_n");
}

std::vector<int64_t> DataFrame::CollectInt64(const std::string& name) const {
  const int idx = schema_->FieldIndex(name);
  std::vector<int64_t> out;
  out.reserve(NumRows());
  for (const auto& p : partitions_) {
    Partition::Pin pin(*p);
    const auto v = p->column(idx).int64s();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::vector<double> DataFrame::CollectDouble(const std::string& name) const {
  const int idx = schema_->FieldIndex(name);
  std::vector<double> out;
  out.reserve(NumRows());
  for (const auto& p : partitions_) {
    Partition::Pin pin(*p);
    const auto v = p->column(idx).doubles();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

}  // namespace geotorch::df
