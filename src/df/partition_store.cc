#include "df/partition_store.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "core/check.h"
#include "core/env.h"
#include "df/dataframe.h"
#include "df/gtdf.h"
#include "obs/obs.h"

namespace geotorch::df {

// --- Partition residency ------------------------------------------------

const Column& Partition::column(int i) const {
  if (!resident_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!resident_.load(std::memory_order_relaxed)) FaultInLocked();
  }
  return *columns_[i];
}

SharedColumn Partition::column_ptr(int i) const {
  if (store_ == nullptr) return columns_[i];
  std::lock_guard<std::mutex> lock(mu_);
  if (!resident_.load(std::memory_order_relaxed)) FaultInLocked();
  return columns_[i];
}

int64_t Partition::ByteSize() const {
  if (store_ == nullptr) {
    int64_t bytes = 0;
    for (const auto& c : columns_) bytes += c->ByteSize();
    return bytes;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.load(std::memory_order_relaxed) ? resident_bytes_ : 0;
}

Partition::Pin::Pin(const Partition& p) : p_(&p) {
  if (p_->store_ == nullptr) return;  // unmanaged: always resident
  {
    std::lock_guard<std::mutex> lock(p_->mu_);
    if (!p_->resident_.load(std::memory_order_relaxed)) p_->FaultInLocked();
    ++p_->pin_count_;
  }
  // Touch + budget enforcement happen with no partition mutex held, so
  // two concurrent fault-ins can never deadlock evicting each other's
  // partition. This pin protects *this* partition from the sweep.
  p_->store_->Touch(p_);
  p_->store_->EnforceBudget(p_);
}

Partition::Pin::~Pin() {
  if (p_ == nullptr || p_->store_ == nullptr) return;
  std::lock_guard<std::mutex> lock(p_->mu_);
  --p_->pin_count_;
}

void Partition::FaultInLocked() const {
  GEO_OBS_SPAN(fault_span, "df.fault");
  auto loaded = ReadGtdf(spill_path_);
  // The engine wrote this file itself moments-to-minutes ago; failing
  // to read it back means the spill directory was tampered with or the
  // disk is dying — not a state the pipeline can continue from.
  GEO_CHECK(loaded.ok()) << "fault-in failed: "
                         << loaded.status().ToString();
  GEO_CHECK_EQ(loaded->num_rows, num_rows_);
  GEO_CHECK_EQ(static_cast<int>(loaded->columns.size()),
               static_cast<int>(types_.size()));
  columns_.clear();
  columns_.reserve(loaded->columns.size());
  int64_t bytes = 0;
  for (auto& col : loaded->columns) {
    SharedColumn shared = TrackColumn(std::move(col));
    bytes += shared->ByteSize();
    columns_.push_back(std::move(shared));
  }
  resident_bytes_ = bytes;
  resident_.store(true, std::memory_order_release);
  GEO_OBS_COUNT("df.fault_in", 1);
  store_->OnFaultIn(this, bytes);
}

bool Partition::SpillLocked(int64_t* file_bytes) const {
  GEO_OBS_SPAN(spill_span, "df.spill");
  *file_bytes = 0;
  if (spill_path_.empty()) {
    std::string path = store_->NextSpillPath();
    Status s = WriteGtdf(path, columns_, num_rows_);
    if (!s.ok()) {
      // Disk trouble: keep the partition resident rather than losing
      // data; the budget sweep will simply fail to shrink this one.
      std::remove(path.c_str());
      GEO_OBS_COUNT("df.spill_failed", 1);
      return false;
    }
    std::error_code ec;
    const auto sz = std::filesystem::file_size(path, ec);
    *file_bytes = ec ? 0 : static_cast<int64_t>(sz);
    GEO_OBS_COUNT("df.spill_bytes", *file_bytes);
    spill_path_ = std::move(path);
  }
  columns_.clear();  // last references drop -> MemoryTracker release
  columns_.shrink_to_fit();
  resident_.store(false, std::memory_order_release);
  return true;
}

// --- PartitionStore -----------------------------------------------------

PartitionStore::Options PartitionStore::Options::FromEnv() {
  Options opts;
  opts.enabled = EnvBool("GEOTORCH_DF_SPILL", true);
  const int64_t mb = EnvInt64("GEOTORCH_DF_RESIDENT_MB", 0, 0);
  if (mb > 0) opts.resident_budget_bytes = mb << 20;
  opts.spill_dir = EnvString("GEOTORCH_DF_SPILL_DIR", opts.spill_dir);
  return opts;
}

PartitionStore& PartitionStore::Global() {
  static PartitionStore* store = new PartitionStore();
  return *store;
}

void PartitionStore::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_ = options;
  dir_ready_ = false;
}

PartitionStore::Options PartitionStore::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opts_;
}

PartitionStore::Stats PartitionStore::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.resident_partitions = static_cast<int64_t>(lru_.size());
  stats.spilled_partitions = static_cast<int64_t>(spilled_.size());
  stats.resident_bytes = resident_bytes_;
  stats.peak_resident_bytes = peak_resident_bytes_;
  stats.spill_count = spill_count_;
  stats.fault_count = fault_count_;
  stats.spill_bytes = spill_bytes_;
  return stats;
}

void PartitionStore::ResetPeak() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_resident_bytes_ = resident_bytes_;
}

void PartitionStore::UpdateGaugeLocked() {
  if (resident_bytes_ > peak_resident_bytes_) {
    peak_resident_bytes_ = resident_bytes_;
  }
  if (GEO_OBS_ON()) obs::SetGauge("df.resident_bytes", resident_bytes_);
}

void PartitionStore::Register(const Partition* p, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.push_front(p);
  resident_index_[p] = lru_.begin();
  resident_bytes_ += bytes;
  UpdateGaugeLocked();
}

void PartitionStore::Unregister(const Partition* p) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return evicting_.count(p) == 0; });
  auto it = resident_index_.find(p);
  if (it != resident_index_.end()) {
    lru_.erase(it->second);
    resident_index_.erase(it);
    resident_bytes_ -= p->resident_bytes_;
    UpdateGaugeLocked();
  } else {
    spilled_.erase(p);
  }
}

void PartitionStore::OnFaultIn(const Partition* p, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  spilled_.erase(p);
  lru_.push_front(p);
  resident_index_[p] = lru_.begin();
  resident_bytes_ += bytes;
  ++fault_count_;
  UpdateGaugeLocked();
}

void PartitionStore::TouchLocked(const Partition* p) {
  auto it = resident_index_.find(p);
  if (it != resident_index_.end() && it->second != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
  }
}

void PartitionStore::Touch(const Partition* p) {
  std::lock_guard<std::mutex> lock(mu_);
  TouchLocked(p);
}

void PartitionStore::EnforceBudget(const Partition* exclude) {
  size_t attempts = 0;
  while (true) {
    const Partition* victim = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!opts_.enabled || resident_bytes_ <= opts_.resident_budget_bytes) {
        return;
      }
      if (attempts >= lru_.size()) return;  // only pinned/excluded left
      // Coldest first; the freshly admitted/pinned partition is exempt
      // (the budget is honored to within one partition by design).
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (*it == exclude || evicting_.count(*it) != 0) continue;
        victim = *it;
        break;
      }
      if (victim == nullptr) return;
      evicting_.insert(victim);
    }
    ++attempts;
    TrySpill(victim);
  }
}

void PartitionStore::TrySpill(const Partition* p) {
  bool evicted = false;
  int64_t freed = 0;
  int64_t wrote = 0;
  {
    std::lock_guard<std::mutex> plock(p->mu_);
    if (p->pin_count_ == 0 && p->resident_.load(std::memory_order_relaxed)) {
      freed = p->resident_bytes_;
      evicted = p->SpillLocked(&wrote);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  evicting_.erase(p);
  if (evicted) {
    auto it = resident_index_.find(p);
    if (it != resident_index_.end()) {
      lru_.erase(it->second);
      resident_index_.erase(it);
    }
    spilled_.insert(p);
    resident_bytes_ -= freed;
    ++spill_count_;
    spill_bytes_ += wrote;
  } else {
    // Pinned (or the write failed): treat as hot so the sweep moves on
    // instead of re-selecting the same victim.
    TouchLocked(p);
  }
  UpdateGaugeLocked();
  cv_.notify_all();
}

std::string PartitionStore::NextSpillPath() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dir_ready_) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.spill_dir, ec);
    dir_ready_ = true;  // a failure surfaces as a WriteGtdf open error
  }
  // The pid keeps concurrently running test/bench processes that share
  // the default directory from clobbering each other's files.
  return opts_.spill_dir + "/part-" + std::to_string(::getpid()) + "-" +
         std::to_string(next_file_id_++) + ".gtdf";
}

}  // namespace geotorch::df
