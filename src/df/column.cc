#include "df/column.h"

#include "core/check.h"

namespace geotorch::df {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return "double";
    case DataType::kInt64:
      return "int64";
    case DataType::kString:
      return "string";
    case DataType::kGeometry:
      return "geometry";
  }
  return "unknown";
}

Column::Column(DataType type) : type_(type) {}

Column Column::FromDoubles(std::vector<double> values) {
  Column c(DataType::kDouble);
  c.doubles_ = std::move(values);
  return c;
}
Column Column::FromInt64s(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.int64s_ = std::move(values);
  return c;
}
Column Column::FromStrings(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.strings_ = std::move(values);
  return c;
}
Column Column::FromPoints(std::vector<spatial::Point> values) {
  Column c(DataType::kGeometry);
  c.points_ = std::move(values);
  return c;
}

Column Column::ViewDoubles(const double* data, int64_t n,
                           std::shared_ptr<const void> keepalive) {
  Column c(DataType::kDouble);
  c.view_ = data;
  c.view_size_ = n;
  c.keepalive_ = std::move(keepalive);
  return c;
}
Column Column::ViewInt64s(const int64_t* data, int64_t n,
                          std::shared_ptr<const void> keepalive) {
  Column c(DataType::kInt64);
  c.view_ = data;
  c.view_size_ = n;
  c.keepalive_ = std::move(keepalive);
  return c;
}
Column Column::ViewPoints(const spatial::Point* data, int64_t n,
                          std::shared_ptr<const void> keepalive) {
  Column c(DataType::kGeometry);
  c.view_ = data;
  c.view_size_ = n;
  c.keepalive_ = std::move(keepalive);
  return c;
}

int64_t Column::size() const {
  if (view_ != nullptr) return view_size_;
  switch (type_) {
    case DataType::kDouble:
      return static_cast<int64_t>(doubles_.size());
    case DataType::kInt64:
      return static_cast<int64_t>(int64s_.size());
    case DataType::kString:
      return static_cast<int64_t>(strings_.size());
    case DataType::kGeometry:
      return static_cast<int64_t>(points_.size());
  }
  return 0;
}

int64_t Column::ByteSize() const {
  if (view_ != nullptr) {
    switch (type_) {
      case DataType::kDouble:
        return view_size_ * static_cast<int64_t>(sizeof(double));
      case DataType::kInt64:
        return view_size_ * static_cast<int64_t>(sizeof(int64_t));
      case DataType::kGeometry:
        return view_size_ * static_cast<int64_t>(sizeof(spatial::Point));
      case DataType::kString:
        break;  // strings never have a view backing
    }
    return 0;
  }
  switch (type_) {
    case DataType::kDouble:
      return static_cast<int64_t>(doubles_.capacity() * sizeof(double));
    case DataType::kInt64:
      return static_cast<int64_t>(int64s_.capacity() * sizeof(int64_t));
    case DataType::kString: {
      int64_t bytes =
          static_cast<int64_t>(strings_.capacity() * sizeof(std::string));
      for (const auto& s : strings_) {
        bytes += static_cast<int64_t>(s.capacity());
      }
      return bytes;
    }
    case DataType::kGeometry:
      return static_cast<int64_t>(points_.capacity() *
                                  sizeof(spatial::Point));
  }
  return 0;
}

std::span<const double> Column::doubles() const {
  GEO_CHECK(type_ == DataType::kDouble);
  if (view_ != nullptr) {
    return {static_cast<const double*>(view_),
            static_cast<size_t>(view_size_)};
  }
  return {doubles_.data(), doubles_.size()};
}
std::span<const int64_t> Column::int64s() const {
  GEO_CHECK(type_ == DataType::kInt64);
  if (view_ != nullptr) {
    return {static_cast<const int64_t*>(view_),
            static_cast<size_t>(view_size_)};
  }
  return {int64s_.data(), int64s_.size()};
}
std::span<const std::string> Column::strings() const {
  GEO_CHECK(type_ == DataType::kString);
  return {strings_.data(), strings_.size()};
}
std::span<const spatial::Point> Column::points() const {
  GEO_CHECK(type_ == DataType::kGeometry);
  if (view_ != nullptr) {
    return {static_cast<const spatial::Point*>(view_),
            static_cast<size_t>(view_size_)};
  }
  return {points_.data(), points_.size()};
}
std::vector<double>& Column::mutable_doubles() {
  GEO_CHECK(type_ == DataType::kDouble && view_ == nullptr);
  return doubles_;
}
std::vector<int64_t>& Column::mutable_int64s() {
  GEO_CHECK(type_ == DataType::kInt64 && view_ == nullptr);
  return int64s_;
}
std::vector<std::string>& Column::mutable_strings() {
  GEO_CHECK(type_ == DataType::kString && view_ == nullptr);
  return strings_;
}
std::vector<spatial::Point>& Column::mutable_points() {
  GEO_CHECK(type_ == DataType::kGeometry && view_ == nullptr);
  return points_;
}

Value Column::Get(int64_t row) const {
  GEO_CHECK(row >= 0 && row < size());
  switch (type_) {
    case DataType::kDouble:
      return doubles()[row];
    case DataType::kInt64:
      return int64s()[row];
    case DataType::kString:
      return strings_[row];
    case DataType::kGeometry:
      return points()[row];
  }
  return 0.0;
}

void Column::Append(const Value& v) {
  GEO_CHECK(view_ == nullptr) << "cannot append to a view column";
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(std::get<double>(v));
      return;
    case DataType::kInt64:
      int64s_.push_back(std::get<int64_t>(v));
      return;
    case DataType::kString:
      strings_.push_back(std::get<std::string>(v));
      return;
    case DataType::kGeometry:
      points_.push_back(std::get<spatial::Point>(v));
      return;
  }
}

Column Column::Gather(const std::vector<int64_t>& indices) const {
  Column out(type_);
  switch (type_) {
    case DataType::kDouble: {
      const auto src = doubles();
      out.doubles_.reserve(indices.size());
      for (int64_t i : indices) out.doubles_.push_back(src[i]);
      break;
    }
    case DataType::kInt64: {
      const auto src = int64s();
      out.int64s_.reserve(indices.size());
      for (int64_t i : indices) out.int64s_.push_back(src[i]);
      break;
    }
    case DataType::kString: {
      out.strings_.reserve(indices.size());
      for (int64_t i : indices) out.strings_.push_back(strings_[i]);
      break;
    }
    case DataType::kGeometry: {
      const auto src = points();
      out.points_.reserve(indices.size());
      for (int64_t i : indices) out.points_.push_back(src[i]);
      break;
    }
  }
  return out;
}

void Column::AppendFrom(const Column& other, int64_t row) {
  GEO_CHECK(type_ == other.type_ && view_ == nullptr);
  GEO_CHECK(row >= 0 && row < other.size());
  switch (type_) {
    case DataType::kDouble:
      doubles_.push_back(other.doubles()[row]);
      return;
    case DataType::kInt64:
      int64s_.push_back(other.int64s()[row]);
      return;
    case DataType::kString:
      strings_.push_back(other.strings_[row]);
      return;
    case DataType::kGeometry:
      points_.push_back(other.points()[row]);
      return;
  }
}

}  // namespace geotorch::df
