#ifndef GEOTORCH_OBS_OBS_H_
#define GEOTORCH_OBS_OBS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// Low-overhead observability: monotonic counters, log2-bucket
/// histograms, and RAII trace spans aggregated per thread and exported
/// as JSON (DESIGN.md §6). Instrumentation sites use the GEO_OBS_*
/// macros below, which
///   - compile to nothing when GEOTORCH_OBS_DISABLED is defined
///     (cmake -DGEOTORCH_OBS=OFF), and
///   - short-circuit on a single relaxed atomic load when observability
///     is disabled at runtime (SetEnabled(false) or GEOTORCH_OBS=0 in
///     the environment).
/// The fast path is lock-free for counters/histograms (relaxed atomics)
/// and takes one uncontended per-thread mutex for spans; cross-thread
/// merging happens only at export time.
namespace geotorch::obs {

/// Runtime master switch. Starts enabled unless the GEOTORCH_OBS
/// environment variable is "0", "off", or "false".
bool Enabled();
void SetEnabled(bool on);

/// Monotonic nanoseconds from std::chrono::steady_clock.
int64_t NowNs();

/// A named monotonic counter. Obtained once per call site (interned,
/// never freed) and bumped with a relaxed atomic add.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A histogram over non-negative int64 values with power-of-two
/// buckets: bucket 0 holds v <= 0, bucket i holds 2^(i-1) <= v < 2^i.
/// count/sum/min/max are tracked exactly; buckets give the shape.
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  void Record(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum / maximum recorded value; 0 when empty.
  int64_t min() const;
  int64_t max() const;
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (exclusive) of bucket i: 0 (the v <= 0 bucket), then
  /// 2, 4, 8, ... — bucket i >= 1 holds 2^(i-1) <= v < 2^i.
  static int64_t BucketBound(int i);

  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
};

/// Interned lookup; the same name always returns the same object.
/// Registration takes a global mutex, so call sites should cache the
/// pointer (the GEO_OBS_* macros do this with a static local).
Counter* GetCounter(const std::string& name);
Histogram* GetHistogram(const std::string& name);

/// Last-write-wins named value (e.g. a memory watermark snapshot).
void SetGauge(const std::string& name, int64_t value);

/// RAII trace span. `name` must have static storage duration (string
/// literals) — records store the pointer, not a copy. Spans nest via a
/// per-thread stack: a span opened while another is open on the same
/// thread becomes its child in the aggregated tree. Spans opened on
/// pool worker threads have no parent and aggregate as roots.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void* state_ = nullptr;  // internal::ThreadSpans*, null when disabled
  int32_t index_ = -1;
  uint64_t generation_ = 0;
};

/// One node of the aggregated span tree: all closed spans with the same
/// (path, name) merge into one node with a count and a total duration.
struct SpanNode {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  std::vector<SpanNode> children;
};

/// Merges every thread's closed spans into one aggregated forest
/// (children sorted by name). Safe to call while other threads record.
std::vector<SpanNode> AggregateSpans();

/// Snapshot of all counters / gauges, sorted by name.
std::vector<std::pair<std::string, int64_t>> CounterValues();
std::vector<std::pair<std::string, int64_t>> GaugeValues();

/// Full JSON document: {"enabled", "counters", "gauges", "histograms",
/// "spans"}. Spans carry count, total_ms, and children.
std::string ExportJson();
/// Writes ExportJson() to `path`; false on I/O failure.
bool WriteJsonFile(const std::string& path);

/// Zeroes every counter/histogram, drops gauges and span records.
/// Open spans survive (they no-op on close). Intended for tests and
/// bench harnesses that want a clean capture window.
void Reset();

}  // namespace geotorch::obs

// --- Instrumentation macros -------------------------------------------------
//
// GEO_OBS_COUNT(name, n)   bump counter `name` by n
// GEO_OBS_HIST(name, v)    record v into histogram `name`
// GEO_OBS_SPAN(var, name)  open a scoped trace span
// GEO_OBS_ON()             expression: instrumentation live right now?
//                          (use to gate timestamp capture at call sites)

#if defined(GEOTORCH_OBS_DISABLED)

#define GEO_OBS_ON() (false)
#define GEO_OBS_COUNT(name, n) \
  do {                         \
  } while (0)
#define GEO_OBS_HIST(name, v) \
  do {                        \
  } while (0)
#define GEO_OBS_SPAN(var, name)

#else

#define GEO_OBS_ON() (::geotorch::obs::Enabled())
#define GEO_OBS_COUNT(name, n)                            \
  do {                                                    \
    if (::geotorch::obs::Enabled()) {                     \
      static ::geotorch::obs::Counter* geo_obs_counter_ = \
          ::geotorch::obs::GetCounter(name);              \
      geo_obs_counter_->Add(n);                           \
    }                                                     \
  } while (0)
#define GEO_OBS_HIST(name, v)                                 \
  do {                                                        \
    if (::geotorch::obs::Enabled()) {                         \
      static ::geotorch::obs::Histogram* geo_obs_histogram_ = \
          ::geotorch::obs::GetHistogram(name);                \
      geo_obs_histogram_->Record(v);                          \
    }                                                         \
  } while (0)
#define GEO_OBS_SPAN(var, name) ::geotorch::obs::TraceSpan var(name)

#endif  // GEOTORCH_OBS_DISABLED

#endif  // GEOTORCH_OBS_OBS_H_
