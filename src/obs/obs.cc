#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace geotorch::obs {
namespace {

bool InitEnabledFromEnv() {
  const char* env = std::getenv("GEOTORCH_OBS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::atomic<bool> g_enabled{InitEnabledFromEnv()};

}  // namespace

namespace internal {

// One closed-or-open span. `parent` indexes into the same thread's
// record vector (-1 for a root); parents always precede children.
struct SpanRecord {
  const char* name;
  int64_t start_ns;
  int64_t end_ns;  // 0 while open
  int32_t parent;
};

// Per-thread span storage. The mutex is uncontended on the fast path
// (only the owner thread touches it between exports); AggregateSpans
// and Reset lock it from other threads.
struct ThreadSpans {
  std::mutex mu;
  std::vector<SpanRecord> records;
  int32_t open = -1;          // innermost open span, -1 if none
  uint64_t generation = 0;    // bumped by Reset() to orphan open spans
};

}  // namespace internal

namespace {

using internal::SpanRecord;
using internal::ThreadSpans;

// All named metrics plus the live/retired per-thread span stores. The
// registry is a leaked singleton so thread-exit hooks and late exports
// never race static destruction.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  std::map<std::string, int64_t> gauges;
  std::vector<ThreadSpans*> threads;
  // Span records of exited threads, one vector per thread so parent
  // indices stay valid.
  std::vector<std::vector<SpanRecord>> retired;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

// Registers the calling thread's span store for its lifetime; on thread
// exit the closed records move to the retired list.
struct ThreadSpansOwner {
  ThreadSpans* spans = new ThreadSpans;

  ThreadSpansOwner() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.threads.push_back(spans);
  }

  ~ThreadSpansOwner() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.threads.erase(std::remove(r.threads.begin(), r.threads.end(), spans),
                    r.threads.end());
    {
      std::lock_guard<std::mutex> spans_lock(spans->mu);
      if (!spans->records.empty()) {
        r.retired.push_back(std::move(spans->records));
      }
    }
    delete spans;
  }
};

ThreadSpans* LocalThreadSpans() {
  thread_local ThreadSpansOwner owner;
  return owner.spans;
}

void AtomicMin(std::atomic<int64_t>& slot, int64_t v) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>& slot, int64_t v) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Histogram -------------------------------------------------------------

void Histogram::Record(int64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int bucket = 0;
  if (v > 0) {
    bucket = std::min<int>(kNumBuckets - 1,
                           std::bit_width(static_cast<uint64_t>(v)));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

int64_t Histogram::min() const {
  const int64_t v = min_.load(std::memory_order_relaxed);
  return v == INT64_MAX ? 0 : v;
}

int64_t Histogram::max() const {
  const int64_t v = max_.load(std::memory_order_relaxed);
  return v == INT64_MIN ? 0 : v;
}

int64_t Histogram::BucketBound(int i) {
  if (i <= 0) return 0;
  return int64_t{1} << i;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// --- Registry accessors ----------------------------------------------------

Counter* GetCounter(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* GetHistogram(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void SetGauge(const std::string& name, int64_t value) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gauges[name] = value;
}

std::vector<std::pair<std::string, int64_t>> CounterValues() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(r.counters.size());
  for (const auto& [name, counter] : r.counters) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> GaugeValues() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.gauges.begin(), r.gauges.end()};
}

// --- TraceSpan -------------------------------------------------------------

TraceSpan::TraceSpan(const char* name) {
  if (!Enabled()) return;
  ThreadSpans* spans = LocalThreadSpans();
  std::lock_guard<std::mutex> lock(spans->mu);
  state_ = spans;
  generation_ = spans->generation;
  index_ = static_cast<int32_t>(spans->records.size());
  spans->records.push_back({name, NowNs(), 0, spans->open});
  spans->open = index_;
}

TraceSpan::~TraceSpan() {
  if (state_ == nullptr) return;
  auto* spans = static_cast<ThreadSpans*>(state_);
  std::lock_guard<std::mutex> lock(spans->mu);
  // A Reset() between open and close dropped this record; nothing to do.
  if (spans->generation != generation_) return;
  SpanRecord& record = spans->records[index_];
  record.end_ns = NowNs();
  spans->open = record.parent;
}

// --- Aggregation and export ------------------------------------------------

namespace {

struct AggNode {
  int64_t count = 0;
  int64_t total_ns = 0;
  std::map<std::string, AggNode> children;
};

// Folds one thread's records into the aggregate forest. Parents precede
// children in the vector, so a single pass suffices; spans still open
// (end_ns == 0) are skipped and their children re-root.
void FoldRecords(const std::vector<SpanRecord>& records, AggNode* root) {
  std::vector<AggNode*> node_of(records.size(), nullptr);
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& rec = records[i];
    if (rec.end_ns == 0) continue;
    AggNode* parent =
        (rec.parent >= 0 && node_of[rec.parent] != nullptr)
            ? node_of[rec.parent]
            : root;
    AggNode* mine = &parent->children[rec.name];
    mine->count += 1;
    mine->total_ns += rec.end_ns - rec.start_ns;
    node_of[i] = mine;
  }
}

std::vector<SpanNode> ToSpanNodes(const AggNode& node) {
  std::vector<SpanNode> out;
  out.reserve(node.children.size());
  for (const auto& [name, child] : node.children) {
    SpanNode sn;
    sn.name = name;
    sn.count = child.count;
    sn.total_ns = child.total_ns;
    sn.children = ToSpanNodes(child);
    out.push_back(std::move(sn));
  }
  return out;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
}

void AppendKeyValue(std::string* out, const std::string& name, int64_t value,
                    bool* first) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  if (!*first) *out += ", ";
  *first = false;
  *out += "\"";
  AppendEscaped(out, name);
  *out += "\": ";
  *out += buf;
}

void AppendSpanNodes(std::string* out, const std::vector<SpanNode>& nodes,
                     int indent) {
  const std::string pad(indent, ' ');
  *out += "[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SpanNode& n = nodes[i];
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"count\": %lld, \"total_ms\": %.3f",
                  static_cast<long long>(n.count),
                  static_cast<double>(n.total_ns) * 1e-6);
    *out += (i == 0 ? "\n" : ",\n") + pad + "  {\"name\": \"";
    AppendEscaped(out, n.name);
    *out += "\", ";
    *out += buf;
    *out += ", \"children\": ";
    AppendSpanNodes(out, n.children, indent + 2);
    *out += "}";
  }
  if (!nodes.empty()) *out += "\n" + pad;
  *out += "]";
}

}  // namespace

std::vector<SpanNode> AggregateSpans() {
  Registry& r = GetRegistry();
  AggNode root;
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadSpans* spans : r.threads) {
    std::lock_guard<std::mutex> spans_lock(spans->mu);
    FoldRecords(spans->records, &root);
  }
  for (const auto& records : r.retired) FoldRecords(records, &root);
  return ToSpanNodes(root);
}

std::string ExportJson() {
  std::string out = "{\n";
  out += std::string("  \"enabled\": ") + (Enabled() ? "true" : "false");

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : CounterValues()) {
    AppendKeyValue(&out, name, value, &first);
  }
  out += "}";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : GaugeValues()) {
    AppendKeyValue(&out, name, value, &first);
  }
  out += "}";

  out += ",\n  \"histograms\": {";
  {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    first = true;
    for (const auto& [name, hist] : r.histograms) {
      if (!first) out += ", ";
      first = false;
      out += "\n    \"";
      AppendEscaped(&out, name);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\": {\"count\": %lld, \"sum\": %lld, \"min\": %lld, "
                    "\"max\": %lld, \"buckets\": {",
                    static_cast<long long>(hist->count()),
                    static_cast<long long>(hist->sum()),
                    static_cast<long long>(hist->min()),
                    static_cast<long long>(hist->max()));
      out += buf;
      bool first_bucket = true;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        const int64_t n = hist->bucket(b);
        if (n == 0) continue;
        char bucket_name[32];
        std::snprintf(bucket_name, sizeof(bucket_name), "%lld",
                      static_cast<long long>(Histogram::BucketBound(b)));
        AppendKeyValue(&out, bucket_name, n, &first_bucket);
      }
      out += "}}";
    }
    if (!r.histograms.empty()) out += "\n  ";
  }
  out += "}";

  out += ",\n  \"spans\": ";
  AppendSpanNodes(&out, AggregateSpans(), 2);
  out += "\n}\n";
  return out;
}

bool WriteJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ExportJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, counter] : r.counters) counter->Reset();
  for (auto& [name, hist] : r.histograms) hist->Reset();
  r.gauges.clear();
  r.retired.clear();
  for (ThreadSpans* spans : r.threads) {
    std::lock_guard<std::mutex> spans_lock(spans->mu);
    spans->records.clear();
    spans->open = -1;
    ++spans->generation;
  }
}

}  // namespace geotorch::obs
